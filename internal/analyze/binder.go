// Package analyze performs semantic analysis: it resolves names,
// checks types, and translates parsed statements into bound logical
// plans. This is the layer the paper's prototype modified most inside
// the MonetDB SQL front-end (§3.1): recognizing the reachability
// predicate in the WHERE clause, creating graph select / graph join
// operators, and binding each CHEAPEST SUM in the projection to its
// associated edge table.
package analyze

import (
	"fmt"
	"strings"

	"graphsql/internal/expr"
	"graphsql/internal/plan"
	"graphsql/internal/sql/ast"
	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// Binder translates AST statements into logical plans.
type Binder struct {
	cat    *storage.Catalog
	params []types.Value
	// ctes stacks WITH scopes; inner scopes shadow outer ones.
	ctes []map[string]*rel
}

// rel is a bound relational subtree plus the nested-table bookkeeping
// needed to give UNNEST a static schema: paths maps path-typed column
// indices to the schemas of their nested tables.
type rel struct {
	node  plan.Node
	paths map[int]storage.Schema
}

func (r *rel) schema() storage.Schema { return r.node.Schema() }

// NewBinder returns a binder over the catalog. The parameter values
// supply the kinds of ? placeholders.
func NewBinder(cat *storage.Catalog, params []types.Value) *Binder {
	return &Binder{cat: cat, params: params}
}

// BindSelect binds a full SELECT statement into an executable plan.
func BindSelect(cat *storage.Catalog, stmt *ast.SelectStmt, params []types.Value) (plan.Node, error) {
	b := NewBinder(cat, params)
	r, err := b.bindSelectStmt(stmt)
	if err != nil {
		return nil, err
	}
	return r.node, nil
}

// dualRel is the implicit single-row input of a FROM-less SELECT
// (paper example A.1 has no FROM clause at all).
func dualRel() *rel {
	c := storage.NewChunk(storage.Schema{{Table: "__dual", Name: "__dual", Kind: types.KindInt}})
	c.AppendRow([]types.Value{types.NewInt(0)})
	return &rel{node: &plan.ChunkScan{Chunk: c, Name: "dual"}, paths: map[int]storage.Schema{}}
}

func (b *Binder) lookupCTE(name string) (*rel, bool) {
	key := strings.ToLower(name)
	for i := len(b.ctes) - 1; i >= 0; i-- {
		if r, ok := b.ctes[i][key]; ok {
			return r, true
		}
	}
	return nil, false
}

// bindSelectStmt binds WITH, the body, and the trailing clauses.
func (b *Binder) bindSelectStmt(stmt *ast.SelectStmt) (*rel, error) {
	if len(stmt.With) > 0 {
		frame := make(map[string]*rel, len(stmt.With))
		b.ctes = append(b.ctes, frame)
		defer func() { b.ctes = b.ctes[:len(b.ctes)-1] }()
		for i := range stmt.With {
			cte := &stmt.With[i]
			r, err := b.bindSelectStmt(cte.Select)
			if err != nil {
				return nil, fmt.Errorf("in WITH %s: %w", cte.Name, err)
			}
			sch := append(storage.Schema(nil), r.schema()...)
			if len(cte.Columns) > 0 {
				if len(cte.Columns) != len(sch) {
					return nil, fmt.Errorf("WITH %s declares %d columns but its query produces %d",
						cte.Name, len(cte.Columns), len(sch))
				}
				for j := range sch {
					sch[j].Name = cte.Columns[j]
				}
			}
			shared := &plan.Shared{Input: r.node, Name: cte.Name}
			frame[strings.ToLower(cte.Name)] = &rel{
				node:  &plan.Rename{Input: shared, Sch: sch},
				paths: r.paths,
			}
		}
	}

	var r *rel
	var err error
	if core, ok := stmt.Body.(*ast.SelectCore); ok {
		// ORDER BY of a plain block may reference non-projected
		// columns; bindCore plans it with hidden sort columns.
		r, err = b.bindCore(core, stmt.OrderBy)
		if err != nil {
			return nil, err
		}
	} else {
		r, err = b.bindBody(stmt.Body)
		if err != nil {
			return nil, err
		}
		if len(stmt.OrderBy) > 0 {
			sc := &scope{schema: r.schema(), paths: r.paths}
			keys := make([]plan.SortKey, len(stmt.OrderBy))
			for i, item := range stmt.OrderBy {
				ke, err := b.bindOrderKey(item.Expr, sc, nil)
				if err != nil {
					return nil, err
				}
				keys[i] = plan.SortKey{Expr: ke, Desc: item.Desc, NullsFirst: item.NullsFirst}
			}
			r = &rel{node: &plan.Sort{Input: r.node, Keys: keys}, paths: r.paths}
		}
	}

	if stmt.Limit != nil || stmt.Offset != nil {
		lim := &plan.Limit{Input: r.node}
		empty := &scope{schema: storage.Schema{}}
		if stmt.Limit != nil {
			e, err := b.bindExpr(stmt.Limit, empty)
			if err != nil {
				return nil, fmt.Errorf("in LIMIT: %w", err)
			}
			lim.Count = e
		}
		if stmt.Offset != nil {
			e, err := b.bindExpr(stmt.Offset, empty)
			if err != nil {
				return nil, fmt.Errorf("in OFFSET: %w", err)
			}
			lim.Skip = e
		}
		r = &rel{node: lim, paths: r.paths}
	}
	return r, nil
}

func (b *Binder) bindBody(body ast.QueryBody) (*rel, error) {
	switch t := body.(type) {
	case *ast.SelectCore:
		return b.bindCore(t, nil)
	case *ast.SetOp:
		left, err := b.bindBody(t.Left)
		if err != nil {
			return nil, err
		}
		right, err := b.bindBody(t.Right)
		if err != nil {
			return nil, err
		}
		ls, rs := left.schema(), right.schema()
		if len(ls) != len(rs) {
			return nil, fmt.Errorf("%s operands have %d and %d columns", t.Op, len(ls), len(rs))
		}
		for i := range ls {
			lk, rk := ls[i].Kind, rs[i].Kind
			ck, ok := types.CommonKind(lk, rk)
			if !ok {
				return nil, fmt.Errorf("%s column %d: incompatible types %v and %v", t.Op, i+1, lk, rk)
			}
			if ck != lk {
				left = castColumns(left, i, ck)
			}
			if ck != rk {
				right = castColumns(right, i, ck)
			}
		}
		return &rel{
			node:  &plan.SetOp{Op: t.Op, All: t.All, Left: left.node, Right: right.node},
			paths: map[int]storage.Schema{},
		}, nil
	}
	return nil, fmt.Errorf("internal: unknown query body %T", body)
}

// castColumns wraps a rel in a projection that casts column i to kind.
func castColumns(r *rel, i int, k types.Kind) *rel {
	sch := r.schema()
	exprs := make([]expr.Expr, len(sch))
	out := append(storage.Schema(nil), sch...)
	for j, m := range sch {
		cr := &expr.ColRef{Idx: j, K: m.Kind, Name: m.Name}
		if j == i {
			exprs[j] = &expr.Cast{X: cr, To: k}
			out[j].Kind = k
		} else {
			exprs[j] = cr
		}
	}
	return &rel{node: &plan.Project{Input: r.node, Exprs: exprs, Sch: out}, paths: r.paths}
}

// splitWhere separates top-level REACHES conjuncts and subquery
// predicates (IN/EXISTS) from ordinary ones (§2: the predicate lives
// in the WHERE clause; this engine requires it as a top-level
// conjunct, and plans subquery predicates as semi/anti joins).
func splitWhere(e ast.Expr, reaches *[]*ast.ReachesExpr, subs *[]ast.Expr, plain *[]ast.Expr) error {
	if bin, ok := e.(*ast.BinaryExpr); ok && bin.Op == "AND" {
		if err := splitWhere(bin.L, reaches, subs, plain); err != nil {
			return err
		}
		return splitWhere(bin.R, reaches, subs, plain)
	}
	switch t := e.(type) {
	case *ast.ReachesExpr:
		*reaches = append(*reaches, t)
		return nil
	case *ast.InSubquery, *ast.ExistsExpr:
		*subs = append(*subs, e)
		return nil
	case *ast.UnaryExpr:
		// NOT EXISTS (...) as a conjunct.
		if ex, ok := t.X.(*ast.ExistsExpr); ok && t.Op == "NOT" {
			*subs = append(*subs, &ast.ExistsExpr{Select: ex.Select, Not: !ex.Not, Line: ex.Line, Col: ex.Col})
			return nil
		}
	}
	if err := ensureNoReaches(e); err != nil {
		return err
	}
	*plain = append(*plain, e)
	return nil
}

// ensureNoReaches rejects REACHES anywhere under e (inside OR, NOT...).
func ensureNoReaches(e ast.Expr) error {
	switch t := e.(type) {
	case *ast.ReachesExpr:
		return fmt.Errorf("line %d col %d: REACHES must be a top-level AND conjunct of the WHERE clause", t.Line, t.Col)
	case *ast.BinaryExpr:
		if err := ensureNoReaches(t.L); err != nil {
			return err
		}
		return ensureNoReaches(t.R)
	case *ast.UnaryExpr:
		return ensureNoReaches(t.X)
	case *ast.IsNullExpr:
		return ensureNoReaches(t.X)
	case *ast.InExpr:
		if err := ensureNoReaches(t.X); err != nil {
			return err
		}
		for _, le := range t.List {
			if err := ensureNoReaches(le); err != nil {
				return err
			}
		}
	case *ast.BetweenExpr:
		for _, x := range []ast.Expr{t.X, t.Lo, t.Hi} {
			if err := ensureNoReaches(x); err != nil {
				return err
			}
		}
	case *ast.LikeExpr:
		if err := ensureNoReaches(t.X); err != nil {
			return err
		}
		return ensureNoReaches(t.Pattern)
	case *ast.CaseExpr:
		if t.Operand != nil {
			if err := ensureNoReaches(t.Operand); err != nil {
				return err
			}
		}
		for _, w := range t.Whens {
			if err := ensureNoReaches(w.When); err != nil {
				return err
			}
			if err := ensureNoReaches(w.Then); err != nil {
				return err
			}
		}
		if t.Else != nil {
			return ensureNoReaches(t.Else)
		}
	case *ast.CastExpr:
		return ensureNoReaches(t.X)
	case *ast.FuncCall:
		for _, a := range t.Args {
			if err := ensureNoReaches(a); err != nil {
				return err
			}
		}
	}
	return nil
}

// pendingMatch is a reachability predicate awaiting plan construction.
type pendingMatch struct {
	re             *ast.ReachesExpr
	edge           *rel
	edgeAlias      string
	srcIdx, dstIdx int
	x, y           expr.Expr
	specs          []plan.CheapestSpec
	specASTs       []*ast.CheapestSum
}

// bindOrderKey binds one ORDER BY key: an output ordinal, an output
// column (alias), or — when fallback is non-nil — any expression over
// the pre-projection scope.
func (b *Binder) bindOrderKey(e ast.Expr, out *scope, fallback *scope) (expr.Expr, error) {
	ke, usedFallback, err := b.bindOrderKey2(e, out, fallback)
	if usedFallback {
		return nil, fmt.Errorf("in ORDER BY: expression is not in the SELECT list")
	}
	return ke, err
}

// bindOrderKey2 binds an ORDER BY key against the output scope,
// falling back to the pre-projection scope; it reports which scope
// resolved the key.
func (b *Binder) bindOrderKey2(e ast.Expr, out *scope, fallback *scope) (expr.Expr, bool, error) {
	if num, ok := e.(*ast.NumberLit); ok && !num.IsFloat {
		var n int
		fmt.Sscanf(num.Text, "%d", &n)
		if n < 1 || n > len(out.schema) {
			return nil, false, fmt.Errorf("ORDER BY position %d is out of range", n)
		}
		m := out.schema[n-1]
		return &expr.ColRef{Idx: n - 1, K: m.Kind, Name: m.Name}, false, nil
	}
	ke, err := b.bindExpr(e, out)
	if err == nil {
		return ke, false, nil
	}
	if fallback != nil {
		if ke2, err2 := b.bindExpr(e, fallback); err2 == nil {
			return ke2, true, nil
		}
	}
	return nil, false, fmt.Errorf("in ORDER BY: %w", err)
}

// bindCore plans one SELECT block, including its ORDER BY (which may
// reference non-projected columns through hidden sort columns).
func (b *Binder) bindCore(core *ast.SelectCore, orderBy []ast.OrderItem) (*rel, error) {
	// 1. FROM clause.
	from, err := b.bindFrom(core.From)
	if err != nil {
		return nil, err
	}
	baseSchema := from.schema()
	sc := &scope{schema: baseSchema, paths: from.paths}

	// 2. WHERE: split off the reachability predicates and the subquery
	// conjuncts.
	var reachASTs []*ast.ReachesExpr
	var subConjs []ast.Expr
	var plainConjs []ast.Expr
	if core.Where != nil {
		if err := splitWhere(core.Where, &reachASTs, &subConjs, &plainConjs); err != nil {
			return nil, err
		}
	}
	node := from.node
	if len(plainConjs) > 0 {
		var preds []expr.Expr
		for _, c := range plainConjs {
			p, err := b.bindExpr(c, sc)
			if err != nil {
				return nil, fmt.Errorf("in WHERE: %w", err)
			}
			if p.Kind() != types.KindBool && p.Kind() != types.KindNull {
				return nil, fmt.Errorf("WHERE condition must be boolean, got %v", p.Kind())
			}
			preds = append(preds, p)
		}
		node = &plan.Filter{Input: node, Pred: expr.AndAll(preds)}
	}
	for _, sq := range subConjs {
		n2, err := b.bindSubqueryConjunct(node, sc, sq)
		if err != nil {
			return nil, err
		}
		node = n2
	}

	// 3. Bind each reachability predicate (the graph select of §3.1).
	pendings := make([]*pendingMatch, 0, len(reachASTs))
	seenAliases := map[string]bool{}
	for _, re := range reachASTs {
		pm, err := b.bindReaches(re, sc)
		if err != nil {
			return nil, err
		}
		if pm.edgeAlias != "" {
			if seenAliases[strings.ToLower(pm.edgeAlias)] {
				return nil, fmt.Errorf("duplicate edge-table variable %q", pm.edgeAlias)
			}
			seenAliases[strings.ToLower(pm.edgeAlias)] = true
		}
		pendings = append(pendings, pm)
	}

	// 4. Collect CHEAPEST SUM calls from the SELECT list (plus GROUP
	// BY and HAVING) and attach them as specs of their bound predicate
	// (§2's binding rules). Identical calls (same binding and weight
	// rendering) share one spec.
	type csPlacement struct {
		pm       *pendingMatch
		specIdx  int
		wantPath bool
	}
	placements := map[string]csPlacement{}
	registerCS := func(cs *ast.CheapestSum, wantPath bool, costName, pathName string) error {
		key := csKey(cs)
		if prev, dup := placements[key]; dup {
			// Upgrade a cost-only registration when a later occurrence
			// requests the path.
			if wantPath && !prev.wantPath {
				spec := &prev.pm.specs[prev.specIdx]
				spec.WantPath = true
				spec.PathName = pathName
				spec.CostName = costName
				prev.wantPath = true
				placements[key] = prev
			}
			return nil
		}
		var pm *pendingMatch
		if cs.Binding == "" {
			if len(pendings) == 0 {
				return fmt.Errorf("line %d col %d: CHEAPEST SUM requires a REACHES predicate in the WHERE clause", cs.Line, cs.Col)
			}
			if len(pendings) > 1 {
				return fmt.Errorf("line %d col %d: CHEAPEST SUM must name its edge table (e.g. CHEAPEST SUM(e: expr)) when several REACHES predicates are present", cs.Line, cs.Col)
			}
			pm = pendings[0]
		} else {
			for _, p := range pendings {
				if strings.EqualFold(p.edgeAlias, cs.Binding) {
					pm = p
					break
				}
			}
			if pm == nil {
				return fmt.Errorf("line %d col %d: CHEAPEST SUM refers to unknown edge-table variable %q", cs.Line, cs.Col, cs.Binding)
			}
		}
		// Bind the weight over the edge table scope (§2: "a columnar
		// expression to be evaluated in the context of the associated
		// edge table").
		esc := &scope{schema: pm.edge.schema(), paths: pm.edge.paths}
		w, err := b.bindExpr(cs.Weight, esc)
		if err != nil {
			return fmt.Errorf("in CHEAPEST SUM: %w", err)
		}
		if !w.Kind().Numeric() {
			return fmt.Errorf("CHEAPEST SUM weight must be numeric, got %v", w.Kind())
		}
		spec := plan.CheapestSpec{
			Weight:   w,
			CostKind: w.Kind(),
			CostName: costName,
			WantPath: wantPath,
			PathName: pathName,
		}
		pm.specs = append(pm.specs, spec)
		pm.specASTs = append(pm.specASTs, cs)
		placements[key] = csPlacement{pm: pm, specIdx: len(pm.specs) - 1, wantPath: wantPath}
		return nil
	}
	var collectCS func(e ast.Expr, bare bool, aliases []string) error
	collectCS = func(e ast.Expr, bare bool, aliases []string) error {
		switch t := e.(type) {
		case *ast.CheapestSum:
			costName, pathName := "cost", "path"
			wantPath := false
			if bare {
				switch len(aliases) {
				case 0:
				case 1:
					costName = aliases[0]
				case 2:
					costName, pathName = aliases[0], aliases[1]
					wantPath = true
				default:
					return fmt.Errorf("CHEAPEST SUM yields at most two components, %d aliases given", len(aliases))
				}
			}
			return registerCS(t, wantPath, costName, pathName)
		case *ast.BinaryExpr:
			if err := collectCS(t.L, false, nil); err != nil {
				return err
			}
			return collectCS(t.R, false, nil)
		case *ast.UnaryExpr:
			return collectCS(t.X, false, nil)
		case *ast.CastExpr:
			return collectCS(t.X, false, nil)
		case *ast.FuncCall:
			for _, a := range t.Args {
				if err := collectCS(a, false, nil); err != nil {
					return err
				}
			}
		case *ast.CaseExpr:
			if t.Operand != nil {
				if err := collectCS(t.Operand, false, nil); err != nil {
					return err
				}
			}
			for _, w := range t.Whens {
				if err := collectCS(w.When, false, nil); err != nil {
					return err
				}
				if err := collectCS(w.Then, false, nil); err != nil {
					return err
				}
			}
			if t.Else != nil {
				return collectCS(t.Else, false, nil)
			}
		}
		return nil
	}
	for i := range core.Items {
		item := &core.Items[i]
		if item.Star {
			continue
		}
		if len(item.Aliases) == 2 {
			if _, ok := item.Expr.(*ast.CheapestSum); !ok {
				return nil, fmt.Errorf("the AS (a, b) alias form is only valid for a bare CHEAPEST SUM")
			}
		}
		if err := collectCS(item.Expr, true, item.Aliases); err != nil {
			return nil, err
		}
	}
	for _, g := range core.GroupBy {
		if err := collectCS(g, false, nil); err != nil {
			return nil, err
		}
	}
	if core.Having != nil {
		if err := collectCS(core.Having, false, nil); err != nil {
			return nil, err
		}
	}
	for _, item := range orderBy {
		if err := collectCS(item.Expr, false, nil); err != nil {
			return nil, err
		}
	}

	// 5. Build the GraphMatch chain, assigning generated columns.
	cheapest := map[string]cheapestCols{}
	paths := map[int]storage.Schema{}
	for k, v := range from.paths {
		paths[k] = v
	}
	width := len(baseSchema)
	for _, pm := range pendings {
		sch := append(storage.Schema(nil), node.Schema()...)
		for si := range pm.specs {
			spec := &pm.specs[si]
			cc := cheapestCols{costIdx: width, costKind: spec.CostKind, pathIdx: -1}
			sch = append(sch, storage.ColMeta{Name: spec.CostName, Kind: spec.CostKind})
			width++
			if spec.WantPath {
				cc.pathIdx = width
				sch = append(sch, storage.ColMeta{Name: spec.PathName, Kind: types.KindPath})
				// The nested table carries the edge table's columns,
				// unqualified (§2).
				nested := make(storage.Schema, 0, len(pm.edge.schema()))
				for _, m := range pm.edge.schema() {
					nested = append(nested, storage.ColMeta{Name: m.Name, Kind: m.Kind})
				}
				paths[cc.pathIdx] = nested
				width++
			}
			cheapest[csKey(pm.specASTs[si])] = cc
		}
		node = &plan.GraphMatch{
			Input:     node,
			Edge:      pm.edge.node,
			X:         pm.x,
			Y:         pm.y,
			SrcIdx:    pm.srcIdx,
			DstIdx:    pm.dstIdx,
			Specs:     pm.specs,
			EdgeAlias: pm.edgeAlias,
			Sch:       sch,
		}
	}
	postMatch := &scope{schema: node.Schema(), paths: paths, cheapest: cheapest}

	// 6. Aggregation.
	var aggCalls []*ast.FuncCall
	for i := range core.Items {
		if core.Items[i].Star {
			continue
		}
		if err := collectAggs(core.Items[i].Expr, &aggCalls); err != nil {
			return nil, err
		}
	}
	if core.Having != nil {
		if err := collectAggs(core.Having, &aggCalls); err != nil {
			return nil, err
		}
	}
	grouped := len(core.GroupBy) > 0 || len(aggCalls) > 0
	outScope := postMatch
	if grouped {
		env := &aggEnv{colOf: map[string]int{}}
		var groupExprs []expr.Expr
		aggSchema := storage.Schema{}
		for _, g := range core.GroupBy {
			ge, err := b.bindExpr(g, postMatch)
			if err != nil {
				return nil, fmt.Errorf("in GROUP BY: %w", err)
			}
			key := render(g)
			if _, dup := env.colOf[key]; dup {
				continue
			}
			env.colOf[key] = len(aggSchema)
			groupExprs = append(groupExprs, ge)
			meta := storage.ColMeta{Name: key, Kind: ge.Kind()}
			if id, ok := g.(*ast.Ident); ok {
				idx, rerr := postMatch.resolve(id.Parts)
				if rerr == nil {
					meta.Table = postMatch.schema[idx].Table
					meta.Name = postMatch.schema[idx].Name
				}
			}
			aggSchema = append(aggSchema, meta)
		}
		var aggSpecs []plan.AggSpec
		for _, fc := range aggCalls {
			key := render(fc)
			if _, dup := env.colOf[key]; dup {
				continue
			}
			spec, err := b.bindAggSpec(fc, postMatch)
			if err != nil {
				return nil, err
			}
			env.colOf[key] = len(aggSchema)
			aggSpecs = append(aggSpecs, spec)
			aggSchema = append(aggSchema, storage.ColMeta{Name: key, Kind: spec.Kind})
		}
		node = &plan.Aggregate{Input: node, GroupBy: groupExprs, Aggs: aggSpecs, Sch: aggSchema}
		outScope = &scope{schema: aggSchema, paths: map[int]storage.Schema{}, agg: env}

		if core.Having != nil {
			h, err := b.bindExpr(core.Having, outScope)
			if err != nil {
				return nil, fmt.Errorf("in HAVING: %w", err)
			}
			if h.Kind() != types.KindBool && h.Kind() != types.KindNull {
				return nil, fmt.Errorf("HAVING condition must be boolean, got %v", h.Kind())
			}
			node = &plan.Filter{Input: node, Pred: h}
		}
	} else if core.Having != nil {
		return nil, fmt.Errorf("HAVING requires GROUP BY or aggregates")
	}

	// 7. Projection.
	var exprs []expr.Expr
	outSchema := storage.Schema{}
	outPaths := map[int]storage.Schema{}
	addCol := func(e expr.Expr, meta storage.ColMeta) {
		if cr, ok := e.(*expr.ColRef); ok && cr.K == types.KindPath {
			if nested, ok := outScope.paths[cr.Idx]; ok {
				outPaths[len(exprs)] = nested
			}
		}
		exprs = append(exprs, e)
		outSchema = append(outSchema, meta)
	}
	for i := range core.Items {
		item := &core.Items[i]
		if item.Star {
			if grouped {
				return nil, fmt.Errorf("SELECT * cannot be combined with GROUP BY or aggregates")
			}
			matched := false
			for idx, m := range baseSchema {
				if m.Table == "__dual" {
					continue
				}
				if item.StarTable != "" && !strings.EqualFold(m.Table, item.StarTable) {
					continue
				}
				matched = true
				cr := &expr.ColRef{Idx: idx, K: m.Kind, Name: m.QualifiedName()}
				if nested, ok := outScope.paths[idx]; ok {
					outPaths[len(exprs)] = nested
				}
				exprs = append(exprs, cr)
				outSchema = append(outSchema, storage.ColMeta{Table: m.Table, Name: m.Name, Kind: m.Kind})
			}
			if item.StarTable != "" && !matched {
				return nil, fmt.Errorf("unknown table %q in %s.*", item.StarTable, item.StarTable)
			}
			continue
		}
		// A bare CHEAPEST SUM with two aliases expands into the cost
		// and path columns.
		if cs, ok := item.Expr.(*ast.CheapestSum); ok && len(item.Aliases) == 2 {
			cc := cheapest[csKey(cs)]
			addCol(&expr.ColRef{Idx: cc.costIdx, K: cc.costKind, Name: item.Aliases[0]},
				storage.ColMeta{Name: item.Aliases[0], Kind: cc.costKind})
			addCol(&expr.ColRef{Idx: cc.pathIdx, K: types.KindPath, Name: item.Aliases[1]},
				storage.ColMeta{Name: item.Aliases[1], Kind: types.KindPath})
			continue
		}
		e, err := b.bindExpr(item.Expr, outScope)
		if err != nil {
			return nil, fmt.Errorf("in SELECT list: %w", err)
		}
		meta := storage.ColMeta{Name: deriveName(item), Kind: e.Kind()}
		// A plain column reference without an alias keeps its source
		// qualifier, so ORDER BY t.col still resolves after
		// projection.
		if cr, ok := e.(*expr.ColRef); ok && len(item.Aliases) == 0 {
			if _, isIdent := item.Expr.(*ast.Ident); isIdent {
				meta.Table = outScope.schema[cr.Idx].Table
				meta.Name = outScope.schema[cr.Idx].Name
			}
		}
		addCol(e, meta)
	}
	// ORDER BY: keys bind against the projected output first (aliases,
	// ordinals); otherwise against the pre-projection scope, in which
	// case the key expression is appended as a hidden projection
	// column, sorted on, and trimmed afterwards.
	visibleWidth := len(exprs)
	var sortKeys []plan.SortKey
	projScope := &scope{schema: outSchema, paths: outPaths}
	for _, item := range orderBy {
		ke, usedFallback, err := b.bindOrderKey2(item.Expr, projScope, outScope)
		if err != nil {
			return nil, err
		}
		// Keys bound against the fallback scope reference projection
		// *inputs*; expose them as hidden outputs.
		if usedFallback {
			if core.Distinct {
				return nil, fmt.Errorf("ORDER BY expressions must appear in the SELECT list when DISTINCT is used")
			}
			idx := len(exprs)
			exprs = append(exprs, ke)
			outSchema = append(outSchema, storage.ColMeta{Name: fmt.Sprintf("__sort%d", idx), Kind: ke.Kind()})
			ke = &expr.ColRef{Idx: idx, K: ke.Kind(), Name: outSchema[idx].Name}
		}
		sortKeys = append(sortKeys, plan.SortKey{Expr: ke, Desc: item.Desc, NullsFirst: item.NullsFirst})
	}

	node = &plan.Project{Input: node, Exprs: exprs, Sch: outSchema}
	out := &rel{node: node, paths: outPaths}
	if core.Distinct {
		out = &rel{node: &plan.Distinct{Input: out.node}, paths: out.paths}
	}
	if len(sortKeys) > 0 {
		out = &rel{node: &plan.Sort{Input: out.node, Keys: sortKeys}, paths: out.paths}
		if len(outSchema) > visibleWidth {
			// Trim the hidden sort columns.
			trimExprs := make([]expr.Expr, visibleWidth)
			for i := 0; i < visibleWidth; i++ {
				m := outSchema[i]
				trimExprs[i] = &expr.ColRef{Idx: i, K: m.Kind, Name: m.Name}
			}
			out = &rel{
				node:  &plan.Project{Input: out.node, Exprs: trimExprs, Sch: outSchema[:visibleWidth]},
				paths: out.paths,
			}
		}
	}
	return out, nil
}

// bindSubqueryConjunct plans one IN/EXISTS WHERE conjunct as a
// semi/anti join over the current node. Only uncorrelated subqueries
// are supported: the subquery binds in its own scope and cannot see
// the outer FROM items.
func (b *Binder) bindSubqueryConjunct(node plan.Node, sc *scope, e ast.Expr) (plan.Node, error) {
	switch t := e.(type) {
	case *ast.ExistsExpr:
		sub, err := b.bindSelectStmt(t.Select)
		if err != nil {
			return nil, fmt.Errorf("in EXISTS subquery: %w", err)
		}
		jt := plan.JoinSemi
		if t.Not {
			jt = plan.JoinAnti
		}
		return &plan.Join{Type: jt, Left: node, Right: sub.node}, nil

	case *ast.InSubquery:
		x, err := b.bindExpr(t.X, sc)
		if err != nil {
			return nil, fmt.Errorf("in IN subquery: %w", err)
		}
		sub, err := b.bindSelectStmt(t.Select)
		if err != nil {
			return nil, fmt.Errorf("in IN subquery: %w", err)
		}
		ss := sub.schema()
		if len(ss) != 1 {
			return nil, fmt.Errorf("line %d col %d: IN subquery must return exactly one column, got %d", t.Line, t.Col, len(ss))
		}
		width := len(node.Schema())
		rref := &expr.ColRef{Idx: width, K: ss[0].Kind, Name: ss[0].Name}
		lx, rx, err := promotePair(x, rref)
		if err != nil {
			return nil, fmt.Errorf("line %d col %d: IN subquery: %w", t.Line, t.Col, err)
		}
		on := &expr.Cmp{Op: expr.CmpEq, L: lx, R: rx}
		if !t.Not {
			return &plan.Join{Type: plan.JoinSemi, Left: node, Right: sub.node, On: on}, nil
		}
		// NOT IN, with SQL's NULL semantics: rows with NULL x never
		// qualify, and a NULL anywhere in the subquery result makes
		// the predicate unknown for every non-matching row.
		shared := &plan.Shared{Input: sub.node, Name: "in-subquery"}
		node = &plan.Filter{Input: node, Pred: &expr.IsNull{X: x, Not: true}}
		node = &plan.Join{Type: plan.JoinAnti, Left: node,
			Right: &plan.Rename{Input: shared, Sch: ss}, On: on}
		nullRows := &plan.Filter{
			Input: &plan.Rename{Input: shared, Sch: ss},
			Pred:  &expr.IsNull{X: &expr.ColRef{Idx: 0, K: ss[0].Kind, Name: ss[0].Name}},
		}
		return &plan.Join{Type: plan.JoinAnti, Left: node, Right: nullRows}, nil
	}
	return nil, fmt.Errorf("internal: unexpected subquery conjunct %T", e)
}

// csKey canonicalizes a CHEAPEST SUM call so identical calls (same
// binding, same weight expression) share one spec and one generated
// column, wherever in the block they appear.
func csKey(cs *ast.CheapestSum) string {
	return strings.ToLower(cs.Binding) + "|" + render(cs.Weight)
}

// deriveName picks the output column name of a select item.
func deriveName(item *ast.SelectItem) string {
	if len(item.Aliases) > 0 {
		return item.Aliases[0]
	}
	switch t := item.Expr.(type) {
	case *ast.Ident:
		return t.Parts[len(t.Parts)-1]
	case *ast.CheapestSum:
		return "cost"
	default:
		return render(item.Expr)
	}
}

// bindReaches binds one reachability predicate: the edge table in its
// own fresh scope, X and Y over the surrounding FROM scope (§2).
func (b *Binder) bindReaches(re *ast.ReachesExpr, sc *scope) (*pendingMatch, error) {
	var edge *rel
	var err error
	alias := re.EdgeAlias
	switch t := re.Edge.(type) {
	case *ast.TableRef:
		edge, err = b.bindTableRef(t.Name, "")
		if err != nil {
			return nil, fmt.Errorf("line %d col %d: edge table: %w", re.Line, re.Col, err)
		}
	case *ast.SubqueryRef:
		r, err2 := b.bindSelectStmt(t.Select)
		if err2 != nil {
			return nil, fmt.Errorf("line %d col %d: edge table: %w", re.Line, re.Col, err2)
		}
		edge = r
	default:
		return nil, fmt.Errorf("unsupported edge table expression %T", re.Edge)
	}
	es := edge.schema()
	srcIdx := es.ColIndex("", re.Src)
	if srcIdx < 0 {
		return nil, fmt.Errorf("line %d col %d: edge source attribute %q not found or ambiguous", re.Line, re.Col, re.Src)
	}
	dstIdx := es.ColIndex("", re.Dst)
	if dstIdx < 0 {
		return nil, fmt.Errorf("line %d col %d: edge destination attribute %q not found or ambiguous", re.Line, re.Col, re.Dst)
	}
	if es[srcIdx].Kind != es[dstIdx].Kind {
		return nil, fmt.Errorf("line %d col %d: edge attributes %s (%v) and %s (%v) have different types",
			re.Line, re.Col, re.Src, es[srcIdx].Kind, re.Dst, es[dstIdx].Kind)
	}
	keyKind := es[srcIdx].Kind

	x, err := b.bindExpr(re.X, sc)
	if err != nil {
		return nil, fmt.Errorf("in REACHES: %w", err)
	}
	y, err := b.bindExpr(re.Y, sc)
	if err != nil {
		return nil, fmt.Errorf("in REACHES: %w", err)
	}
	// §2: "The types for the attributes E.S, E.D, VP.X, VP.Y must
	// match, otherwise a semantic error arises."
	for _, side := range []struct {
		e    expr.Expr
		what string
	}{{x, "source"}, {y, "destination"}} {
		k := side.e.Kind()
		if k != keyKind && k != types.KindNull {
			return nil, fmt.Errorf("line %d col %d: REACHES %s has type %v but the edge keys have type %v",
				re.Line, re.Col, side.what, k, keyKind)
		}
	}
	return &pendingMatch{
		re: re, edge: edge, edgeAlias: alias,
		srcIdx: srcIdx, dstIdx: dstIdx, x: x, y: y,
	}, nil
}
