package analyze

import (
	"graphsql/internal/expr"
	"graphsql/internal/sql/ast"
	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// TypeNameKind maps a SQL type name (INT, DOUBLE, VARCHAR, ...) to its
// runtime kind.
func TypeNameKind(name string) (types.Kind, error) { return typeNameKind(name) }

// BindScalar binds an expression that may not reference any column
// (INSERT VALUES rows, LIMIT counts).
func (b *Binder) BindScalar(e ast.Expr) (expr.Expr, error) {
	return b.bindExpr(e, &scope{schema: storage.Schema{}})
}

// BindOver binds an expression against an explicit schema (used by
// DELETE ... WHERE).
func (b *Binder) BindOver(e ast.Expr, sch storage.Schema) (expr.Expr, error) {
	return b.bindExpr(e, &scope{schema: sch, paths: map[int]storage.Schema{}})
}
