package analyze

import (
	"fmt"
	"graphsql/internal/expr"
	"graphsql/internal/plan"
	"graphsql/internal/sql/ast"
	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// bindFrom folds the FROM list left-to-right. Comma-separated items
// combine by cross product; UNNEST items are lateral and consume the
// scope accumulated so far (§2's lateral join shorthand).
func (b *Binder) bindFrom(items []ast.TableExpr) (*rel, error) {
	if len(items) == 0 {
		return dualRel(), nil
	}
	var cur *rel
	for _, item := range items {
		next, err := b.bindFromItem(cur, item)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

// bindFromItem binds one FROM item. cur is the relation accumulated by
// earlier comma items (nil for the first); lateral UNNEST absorbs it.
func (b *Binder) bindFromItem(cur *rel, te ast.TableExpr) (*rel, error) {
	switch t := te.(type) {
	case *ast.UnnestRef:
		if cur == nil {
			return nil, fmt.Errorf("UNNEST must follow the table expression that produces its argument")
		}
		return b.bindUnnest(cur, t)

	case *ast.JoinExpr:
		left, err := b.bindFromItem(cur, t.Left)
		if err != nil {
			return nil, err
		}
		if u, ok := t.Right.(*ast.UnnestRef); ok {
			// [LEFT] JOIN UNNEST(...) ON TRUE is (outer) lateral
			// unnesting.
			if t.On != nil {
				if lit, ok := t.On.(*ast.BoolLit); !ok || !lit.Val {
					return nil, fmt.Errorf("JOIN UNNEST only supports ON TRUE")
				}
			}
			return b.bindUnnest(left, u)
		}
		right, err := b.bindFromItem(nil, t.Right)
		if err != nil {
			return nil, err
		}
		combined := crossRel(left, right)
		var jt plan.JoinType
		switch t.Type {
		case ast.JoinCross:
			jt = plan.JoinCross
		case ast.JoinInner:
			jt = plan.JoinInner
		case ast.JoinLeft:
			jt = plan.JoinLeft
		}
		j := &plan.Join{Type: jt, Left: left.node, Right: right.node}
		if t.On != nil {
			concat := append(append(storage.Schema{}, left.schema()...), right.schema()...)
			sc := &scope{schema: concat, paths: combined.paths}
			on, err := b.bindExpr(t.On, sc)
			if err != nil {
				return nil, fmt.Errorf("in JOIN ON: %w", err)
			}
			if on.Kind() != types.KindBool && on.Kind() != types.KindNull {
				return nil, fmt.Errorf("JOIN condition must be boolean, got %v", on.Kind())
			}
			j.On = on
		} else if jt != plan.JoinCross {
			return nil, fmt.Errorf("%v JOIN requires an ON condition", t.Type)
		}
		combined.node = j
		return combined, nil

	case *ast.TableRef:
		r, err := b.bindTableRef(t.Name, t.Alias)
		if err != nil {
			return nil, err
		}
		if cur == nil {
			return r, nil
		}
		out := crossRel(cur, r)
		out.node = &plan.Join{Type: plan.JoinCross, Left: cur.node, Right: r.node}
		return out, nil

	case *ast.SubqueryRef:
		inner, err := b.bindSelectStmt(t.Select)
		if err != nil {
			return nil, fmt.Errorf("in subquery: %w", err)
		}
		r := requalify(inner, t.Alias)
		if cur == nil {
			return r, nil
		}
		out := crossRel(cur, r)
		out.node = &plan.Join{Type: plan.JoinCross, Left: cur.node, Right: r.node}
		return out, nil
	}
	return nil, fmt.Errorf("internal: unknown FROM item %T", te)
}

// bindTableRef resolves a named relation: CTEs shadow base tables.
func (b *Binder) bindTableRef(name, alias string) (*rel, error) {
	if alias == "" {
		alias = name
	}
	if cte, ok := b.lookupCTE(name); ok {
		return requalify(cte, alias), nil
	}
	t, ok := b.cat.Table(name)
	if !ok {
		return nil, fmt.Errorf("table %q does not exist", name)
	}
	sch := make(storage.Schema, len(t.Schema))
	for i, m := range t.Schema {
		sch[i] = storage.ColMeta{Table: alias, Name: m.Name, Kind: m.Kind}
	}
	return &rel{node: &plan.Scan{Table: t, Alias: alias, Sch: sch}, paths: map[int]storage.Schema{}}, nil
}

// requalify exposes a relation under a new binding qualifier.
func requalify(r *rel, alias string) *rel {
	sch := make(storage.Schema, len(r.schema()))
	for i, m := range r.schema() {
		sch[i] = storage.ColMeta{Table: alias, Name: m.Name, Kind: m.Kind}
	}
	return &rel{node: &plan.Rename{Input: r.node, Sch: sch}, paths: r.paths}
}

// crossRel merges the path bookkeeping of two sides of a join; the
// caller sets the node.
func crossRel(left, right *rel) *rel {
	paths := map[int]storage.Schema{}
	for k, v := range left.paths {
		paths[k] = v
	}
	off := len(left.schema())
	for k, v := range right.paths {
		paths[k+off] = v
	}
	return &rel{paths: paths}
}

// bindUnnest builds the lateral unnest of a nested-table column (§2).
func (b *Binder) bindUnnest(cur *rel, u *ast.UnnestRef) (*rel, error) {
	sc := &scope{schema: cur.schema(), paths: cur.paths}
	pe, err := b.bindExpr(u.Expr, sc)
	if err != nil {
		return nil, fmt.Errorf("in UNNEST: %w", err)
	}
	if pe.Kind() != types.KindPath {
		return nil, fmt.Errorf("UNNEST requires a nested-table argument, got %v", pe.Kind())
	}
	cr, ok := pe.(*expr.ColRef)
	if !ok {
		return nil, fmt.Errorf("UNNEST argument must be a nested-table column reference")
	}
	nested, ok := cur.paths[cr.Idx]
	if !ok {
		return nil, fmt.Errorf("internal: no schema tracked for nested-table column %s", cr.Name)
	}

	sch := append(storage.Schema(nil), cur.schema()...)
	for _, m := range nested {
		sch = append(sch, storage.ColMeta{Table: u.Alias, Name: m.Name, Kind: m.Kind})
	}
	if u.Ordinality {
		sch = append(sch, storage.ColMeta{Table: u.Alias, Name: "ordinality", Kind: types.KindInt})
	}
	node := &plan.Unnest{
		Input:      cur.node,
		PathExpr:   pe,
		PathSchema: nested,
		Ordinality: u.Ordinality,
		Outer:      u.Outer,
		Alias:      u.Alias,
		Sch:        sch,
	}
	// Input path columns stay addressable after the unnest.
	paths := map[int]storage.Schema{}
	for k, v := range cur.paths {
		paths[k] = v
	}
	return &rel{node: node, paths: paths}, nil
}
