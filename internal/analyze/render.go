package analyze

import (
	"fmt"
	"strings"

	"graphsql/internal/sql/ast"
)

// render produces a canonical textual form of an AST expression, used
// to match GROUP BY expressions and repeated aggregate calls against
// the SELECT list and HAVING clause (identifiers are lower-cased so
// matching is case-insensitive, as name resolution is).
func render(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		parts := make([]string, len(t.Parts))
		for i, p := range t.Parts {
			parts[i] = strings.ToLower(p)
		}
		return strings.Join(parts, ".")
	case *ast.NumberLit:
		return t.Text
	case *ast.StringLit:
		return "'" + strings.ReplaceAll(t.Val, "'", "''") + "'"
	case *ast.BoolLit:
		if t.Val {
			return "TRUE"
		}
		return "FALSE"
	case *ast.NullLit:
		return "NULL"
	case *ast.ParamExpr:
		return fmt.Sprintf("?%d", t.Index)
	case *ast.BinaryExpr:
		return "(" + render(t.L) + " " + t.Op + " " + render(t.R) + ")"
	case *ast.UnaryExpr:
		return "(" + t.Op + " " + render(t.X) + ")"
	case *ast.IsNullExpr:
		if t.Not {
			return "(" + render(t.X) + " IS NOT NULL)"
		}
		return "(" + render(t.X) + " IS NULL)"
	case *ast.InExpr:
		var b strings.Builder
		b.WriteString("(" + render(t.X))
		if t.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		for i, le := range t.List {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(render(le))
		}
		b.WriteString("))")
		return b.String()
	case *ast.BetweenExpr:
		n := ""
		if t.Not {
			n = " NOT"
		}
		return "(" + render(t.X) + n + " BETWEEN " + render(t.Lo) + " AND " + render(t.Hi) + ")"
	case *ast.LikeExpr:
		n := ""
		if t.Not {
			n = " NOT"
		}
		return "(" + render(t.X) + n + " LIKE " + render(t.Pattern) + ")"
	case *ast.CaseExpr:
		var b strings.Builder
		b.WriteString("CASE")
		if t.Operand != nil {
			b.WriteString(" " + render(t.Operand))
		}
		for _, w := range t.Whens {
			b.WriteString(" WHEN " + render(w.When) + " THEN " + render(w.Then))
		}
		if t.Else != nil {
			b.WriteString(" ELSE " + render(t.Else))
		}
		b.WriteString(" END")
		return b.String()
	case *ast.CastExpr:
		return "CAST(" + render(t.X) + " AS " + t.TypeName + ")"
	case *ast.FuncCall:
		var b strings.Builder
		b.WriteString(t.Name + "(")
		if t.Star {
			b.WriteString("*")
		}
		if t.Distinct {
			b.WriteString("DISTINCT ")
		}
		for i, a := range t.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(render(a))
		}
		b.WriteString(")")
		return b.String()
	case *ast.CheapestSum:
		return fmt.Sprintf("CHEAPEST SUM(%s: %s)", t.Binding, render(t.Weight))
	case *ast.ReachesExpr:
		return fmt.Sprintf("(%s REACHES %s)", render(t.X), render(t.Y))
	}
	return fmt.Sprintf("%T", e)
}
