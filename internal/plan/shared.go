package plan

import "graphsql/internal/storage"

// Rename is a zero-cost schema relabeling: it exposes its input under
// a new qualifier (derived-table and CTE aliases).
type Rename struct {
	Input Node
	Sch   storage.Schema
}

// Schema implements Node.
func (r *Rename) Schema() storage.Schema { return r.Sch }

// Children implements Node.
func (r *Rename) Children() []Node { return []Node{r.Input} }

// Describe implements Node.
func (r *Rename) Describe() string { return "Rename" }

// Shared marks a subplan referenced from several places (a CTE body);
// the executor materializes it once per execution and reuses the
// chunk.
type Shared struct {
	Input Node
	Name  string
}

// Schema implements Node.
func (s *Shared) Schema() storage.Schema { return s.Input.Schema() }

// Children implements Node.
func (s *Shared) Children() []Node { return []Node{s.Input} }

// Describe implements Node.
func (s *Shared) Describe() string { return "Shared " + s.Name }
