// Package plan defines the bound logical plan. Besides the classic
// relational operators, it contains the two operators the paper adds to
// the algebra (§3.1): the graph select σ̂ and the graph join ⋈̂, both
// represented by the GraphMatch node — a graph join is simply a
// GraphMatch whose input is a cross product, exactly how the paper's
// rewriter unfolds it.
package plan

import (
	"fmt"
	"strings"

	"graphsql/internal/expr"
	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// Node is a bound logical plan operator.
type Node interface {
	// Schema is the output schema of the operator.
	Schema() storage.Schema
	// Children returns the input operators.
	Children() []Node
	// Describe renders one line for EXPLAIN output.
	Describe() string
}

// Scan reads a base table.
type Scan struct {
	Table *storage.Table
	// Alias is the binding qualifier used in the query.
	Alias string
	Sch   storage.Schema
}

// Schema implements Node.
func (s *Scan) Schema() storage.Schema { return s.Sch }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Describe implements Node.
func (s *Scan) Describe() string { return fmt.Sprintf("Scan %s AS %s", s.Table.Name, s.Alias) }

// ChunkScan wraps an already-materialized chunk (CTE results).
type ChunkScan struct {
	Chunk *storage.Chunk
	Name  string
}

// Schema implements Node.
func (s *ChunkScan) Schema() storage.Schema { return s.Chunk.Schema }

// Children implements Node.
func (s *ChunkScan) Children() []Node { return nil }

// Describe implements Node.
func (s *ChunkScan) Describe() string { return "ChunkScan " + s.Name }

// Filter keeps the rows satisfying Pred.
type Filter struct {
	Input Node
	Pred  expr.Expr
}

// Schema implements Node.
func (f *Filter) Schema() storage.Schema { return f.Input.Schema() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Input} }

// Describe implements Node.
func (f *Filter) Describe() string { return "Filter " + f.Pred.String() }

// Project computes one output column per expression.
type Project struct {
	Input Node
	Exprs []expr.Expr
	Sch   storage.Schema
}

// Schema implements Node.
func (p *Project) Schema() storage.Schema { return p.Sch }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Input} }

// Describe implements Node.
func (p *Project) Describe() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project " + strings.Join(parts, ", ")
}

// JoinType enumerates physical join flavors.
type JoinType uint8

const (
	// JoinCross is a cross product.
	JoinCross JoinType = iota
	// JoinInner is an inner join with a condition.
	JoinInner
	// JoinLeft is a left outer join.
	JoinLeft
	// JoinSemi keeps left rows with at least one match (IN/EXISTS
	// subqueries); its output schema is the left schema only. A nil
	// condition means "right side non-empty".
	JoinSemi
	// JoinAnti keeps left rows with no match (NOT IN/NOT EXISTS).
	JoinAnti
)

// Join combines two inputs. On is evaluated over the concatenated
// schema (left columns first); it is nil for cross products.
type Join struct {
	Type        JoinType
	Left, Right Node
	On          expr.Expr
}

// Schema implements Node. Semi and anti joins only filter the left
// side, so they expose the left schema.
func (j *Join) Schema() storage.Schema {
	if j.Type == JoinSemi || j.Type == JoinAnti {
		return j.Left.Schema()
	}
	ls, rs := j.Left.Schema(), j.Right.Schema()
	out := make(storage.Schema, 0, len(ls)+len(rs))
	out = append(out, ls...)
	out = append(out, rs...)
	return out
}

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// Describe implements Node.
func (j *Join) Describe() string {
	on := ""
	if j.On != nil {
		on = " " + j.On.String()
	}
	switch j.Type {
	case JoinCross:
		return "CrossJoin"
	case JoinLeft:
		return "LeftJoin" + on
	case JoinSemi:
		return "SemiJoin" + on
	case JoinAnti:
		return "AntiJoin" + on
	default:
		return "Join" + on
	}
}

// CheapestSpec is one CHEAPEST SUM evaluation attached to a GraphMatch
// (§2). Weight is bound over the edge schema.
type CheapestSpec struct {
	Weight expr.Expr
	// CostKind is KindInt or KindFloat, derived from Weight.
	CostKind types.Kind
	CostName string
	// WantPath requests the nested-table path output.
	WantPath bool
	PathName string
	// ForceBinaryHeap switches integer Dijkstra to a binary heap; only
	// the E5 ablation sets it.
	ForceBinaryHeap bool
}

// GraphMatch is the paper's graph select σ̂ (and, over a cross-product
// input, the graph join ⋈̂): it models a graph from the Edge subplan,
// keeps the input rows whose X value reaches their Y value, and
// appends one cost (and optional path) column per CheapestSpec.
type GraphMatch struct {
	Input Node
	Edge  Node
	// X and Y are bound over the input schema.
	X, Y expr.Expr
	// SrcIdx and DstIdx locate the source/destination attributes in
	// the edge schema.
	SrcIdx, DstIdx int
	Specs          []CheapestSpec
	// EdgeAlias is the tuple variable naming this predicate.
	EdgeAlias string
	Sch       storage.Schema
}

// Schema implements Node.
func (g *GraphMatch) Schema() storage.Schema { return g.Sch }

// Children implements Node.
func (g *GraphMatch) Children() []Node { return []Node{g.Input, g.Edge} }

// Describe implements Node.
func (g *GraphMatch) Describe() string {
	es := g.Edge.Schema()
	d := fmt.Sprintf("GraphMatch %s REACHES %s OVER %s EDGE(%s,%s)",
		g.X, g.Y, g.EdgeAlias, es[g.SrcIdx].Name, es[g.DstIdx].Name)
	for _, sp := range g.Specs {
		d += fmt.Sprintf(" CHEAPEST SUM(%s)", sp.Weight)
	}
	return d
}

// AggOp enumerates aggregate functions.
type AggOp uint8

// Aggregate operators.
const (
	AggCountStar AggOp = iota
	AggCount
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String names the aggregate.
func (op AggOp) String() string {
	return [...]string{"COUNT(*)", "COUNT", "SUM", "MIN", "MAX", "AVG"}[op]
}

// AggSpec is one aggregate computation.
type AggSpec struct {
	Op AggOp
	// Arg is nil for COUNT(*).
	Arg      expr.Expr
	Distinct bool
	// Kind is the result type.
	Kind types.Kind
	Name string
}

// Aggregate groups the input and evaluates aggregates. Its output
// schema is the group expressions followed by the aggregates.
type Aggregate struct {
	Input   Node
	GroupBy []expr.Expr
	Aggs    []AggSpec
	Sch     storage.Schema
}

// Schema implements Node.
func (a *Aggregate) Schema() storage.Schema { return a.Sch }

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Input} }

// Describe implements Node.
func (a *Aggregate) Describe() string {
	return fmt.Sprintf("Aggregate groups=%d aggs=%d", len(a.GroupBy), len(a.Aggs))
}

// SortKey is one ORDER BY key bound over the input schema.
type SortKey struct {
	Expr expr.Expr
	Desc bool
	// NullsFirst: -1 default (last asc, first desc), 0 last, 1 first.
	NullsFirst int
}

// Sort orders the input.
type Sort struct {
	Input Node
	Keys  []SortKey
}

// Schema implements Node.
func (s *Sort) Schema() storage.Schema { return s.Input.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Input} }

// Describe implements Node.
func (s *Sort) Describe() string { return fmt.Sprintf("Sort keys=%d", len(s.Keys)) }

// Limit truncates the input. Count or Skip may be nil.
type Limit struct {
	Input Node
	Count expr.Expr
	Skip  expr.Expr
}

// Schema implements Node.
func (l *Limit) Schema() storage.Schema { return l.Input.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Input} }

// Describe implements Node.
func (l *Limit) Describe() string { return "Limit" }

// Distinct removes duplicate rows.
type Distinct struct{ Input Node }

// Schema implements Node.
func (d *Distinct) Schema() storage.Schema { return d.Input.Schema() }

// Children implements Node.
func (d *Distinct) Children() []Node { return []Node{d.Input} }

// Describe implements Node.
func (d *Distinct) Describe() string { return "Distinct" }

// Unnest expands a nested-table column laterally (§2): for each input
// row, one output row per edge of the path, carrying the path's
// columns (and the optional 1-based ordinality). Outer preserves rows
// whose path is empty or NULL, null-extending the path columns.
type Unnest struct {
	Input Node
	// PathExpr is bound over the input schema and yields KindPath.
	PathExpr expr.Expr
	// PathSchema is the static schema of the nested table.
	PathSchema storage.Schema
	Ordinality bool
	Outer      bool
	Alias      string
	Sch        storage.Schema
}

// Schema implements Node.
func (u *Unnest) Schema() storage.Schema { return u.Sch }

// Children implements Node.
func (u *Unnest) Children() []Node { return []Node{u.Input} }

// Describe implements Node.
func (u *Unnest) Describe() string {
	d := "Unnest " + u.PathExpr.String()
	if u.Ordinality {
		d += " WITH ORDINALITY"
	}
	if u.Outer {
		d += " (outer)"
	}
	return d
}

// SetOp combines two inputs with UNION / EXCEPT / INTERSECT semantics.
type SetOp struct {
	Op          string // "UNION", "EXCEPT", "INTERSECT"
	All         bool
	Left, Right Node
}

// Schema implements Node.
func (s *SetOp) Schema() storage.Schema { return s.Left.Schema() }

// Children implements Node.
func (s *SetOp) Children() []Node { return []Node{s.Left, s.Right} }

// Describe implements Node.
func (s *SetOp) Describe() string {
	d := s.Op
	if s.All {
		d += " ALL"
	}
	return d
}

// Explain renders the plan tree as an indented listing.
func Explain(n Node) string {
	var b strings.Builder
	var walk func(Node, int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Describe())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}
