package plan

import (
	"graphsql/internal/expr"
)

// Rewrite applies the logical rewrites of the query rewriter: it
// pushes filter conjuncts towards the leaves (through cross products,
// inner joins and below graph matches) and upgrades cross products
// with applicable equality conjuncts into inner joins. This mirrors
// the paper's optimiser stage, where the graph join is unfolded from a
// cross product plus graph select (§3.1) — in this engine the
// GraphMatch over a cross-product input *is* the graph join, so the
// rewriter's job is to keep that cross product small by pushing the
// point-selection predicates (e.g. p1.id = ?) onto the join sides.
func Rewrite(n Node) Node {
	switch t := n.(type) {
	case *Filter:
		input := Rewrite(t.Input)
		conjs := expr.SplitConjuncts(t.Pred, nil)
		node, rest := pushConjuncts(input, conjs)
		if p := expr.AndAll(rest); p != nil {
			return &Filter{Input: node, Pred: p}
		}
		return node
	case *Project:
		t.Input = Rewrite(t.Input)
		return t
	case *Join:
		t.Left = Rewrite(t.Left)
		t.Right = Rewrite(t.Right)
		return t
	case *GraphMatch:
		t.Input = Rewrite(t.Input)
		t.Edge = Rewrite(t.Edge)
		return t
	case *Aggregate:
		t.Input = Rewrite(t.Input)
		return t
	case *Sort:
		t.Input = Rewrite(t.Input)
		return t
	case *Limit:
		t.Input = Rewrite(t.Input)
		return t
	case *Distinct:
		t.Input = Rewrite(t.Input)
		return t
	case *Unnest:
		t.Input = Rewrite(t.Input)
		return t
	case *SetOp:
		t.Left = Rewrite(t.Left)
		t.Right = Rewrite(t.Right)
		return t
	case *Rename:
		t.Input = Rewrite(t.Input)
		return t
	case *Shared:
		t.Input = Rewrite(t.Input)
		return t
	}
	return n
}

// pushConjuncts pushes the given conjuncts as deep as possible into n.
// It returns the rewritten node and the conjuncts that could not be
// absorbed.
func pushConjuncts(n Node, conjs []expr.Expr) (Node, []expr.Expr) {
	if len(conjs) == 0 {
		return n, nil
	}
	switch t := n.(type) {
	case *Filter:
		merged := append(expr.SplitConjuncts(t.Pred, nil), conjs...)
		return pushConjuncts(t.Input, merged)

	case *Join:
		if t.Type == JoinSemi || t.Type == JoinAnti {
			// The output schema is the left schema, so every conjunct
			// from above refers to left columns and can move below.
			t.Left, conjs = pushConjuncts(t.Left, conjs)
			if p := expr.AndAll(conjs); p != nil {
				t.Left = &Filter{Input: t.Left, Pred: p}
			}
			t.Right = Rewrite(t.Right)
			return t, nil
		}
		if t.Type == JoinLeft {
			// Only conjuncts over the preserved (left) side can move
			// below a left outer join.
			nLeft := len(t.Left.Schema())
			var leftC, rest []expr.Expr
			for _, c := range conjs {
				if maxRef(c) < nLeft && minRef(c) >= 0 {
					leftC = append(leftC, c)
				} else {
					rest = append(rest, c)
				}
			}
			t.Left, leftC = pushConjuncts(t.Left, leftC)
			if p := expr.AndAll(leftC); p != nil {
				t.Left = &Filter{Input: t.Left, Pred: p}
			}
			return t, rest
		}
		nLeft := len(t.Left.Schema())
		var leftC, rightC, joinC, rest []expr.Expr
		for _, c := range conjs {
			lo, hi := minRef(c), maxRef(c)
			switch {
			case hi < nLeft:
				leftC = append(leftC, c)
			case lo >= nLeft:
				rightC = append(rightC, expr.MapRefs(c, func(i int) int { return i - nLeft }))
			default:
				// Spans both sides: becomes (part of) the join
				// condition, upgrading a cross product to an inner
				// join.
				joinC = append(joinC, c)
			}
		}
		t.Left, leftC = pushConjuncts(t.Left, leftC)
		if p := expr.AndAll(leftC); p != nil {
			t.Left = &Filter{Input: t.Left, Pred: p}
		}
		t.Right, rightC = pushConjuncts(t.Right, rightC)
		if p := expr.AndAll(rightC); p != nil {
			t.Right = &Filter{Input: t.Right, Pred: p}
		}
		if len(joinC) > 0 {
			if t.On != nil {
				joinC = append(expr.SplitConjuncts(t.On, nil), joinC...)
			}
			t.On = expr.AndAll(joinC)
			if t.Type == JoinCross {
				t.Type = JoinInner
			}
		}
		return t, rest

	case *GraphMatch:
		// Conjuncts over the plain input columns slide below the
		// match; the generated cost/path columns sit at the end of the
		// schema, so an index bound suffices.
		nIn := len(t.Input.Schema())
		var inC, rest []expr.Expr
		for _, c := range conjs {
			if maxRef(c) < nIn {
				inC = append(inC, c)
			} else {
				rest = append(rest, c)
			}
		}
		t.Input, inC = pushConjuncts(t.Input, inC)
		if p := expr.AndAll(inC); p != nil {
			t.Input = &Filter{Input: t.Input, Pred: p}
		}
		t.Edge = Rewrite(t.Edge)
		return t, rest

	case *Unnest:
		// Conjuncts over the pre-unnest columns slide below; for the
		// outer variant nothing moves (the null-extended rows would
		// change).
		if t.Outer {
			return t, conjs
		}
		nIn := len(t.Input.Schema())
		var inC, rest []expr.Expr
		for _, c := range conjs {
			if maxRef(c) < nIn {
				inC = append(inC, c)
			} else {
				rest = append(rest, c)
			}
		}
		t.Input, inC = pushConjuncts(t.Input, inC)
		if p := expr.AndAll(inC); p != nil {
			t.Input = &Filter{Input: t.Input, Pred: p}
		}
		return t, rest

	default:
		n = Rewrite(n)
		return n, conjs
	}
}

func maxRef(e expr.Expr) int {
	m := -1
	for _, r := range expr.Refs(e, nil) {
		if r > m {
			m = r
		}
	}
	return m
}

func minRef(e expr.Expr) int {
	m := 1 << 30
	for _, r := range expr.Refs(e, nil) {
		if r < m {
			m = r
		}
	}
	if m == 1<<30 {
		return 0
	}
	return m
}
