package plan

import (
	"strings"
	"testing"

	"graphsql/internal/expr"
	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// mkScan builds a scan over a fresh two-column table (a, b).
func mkScan(name string) *Scan {
	cat := storage.NewCatalog()
	tbl, _ := cat.CreateTable(name, storage.Schema{
		{Name: "a", Kind: types.KindInt},
		{Name: "b", Kind: types.KindInt},
	})
	sch := make(storage.Schema, len(tbl.Schema))
	for i, m := range tbl.Schema {
		sch[i] = storage.ColMeta{Table: name, Name: m.Name, Kind: m.Kind}
	}
	return &Scan{Table: tbl, Alias: name, Sch: sch}
}

func cref(i int) *expr.ColRef { return &expr.ColRef{Idx: i, K: types.KindInt} }

func eq(l, r expr.Expr) expr.Expr { return &expr.Cmp{Op: expr.CmpEq, L: l, R: r} }

func constInt(v int64) expr.Expr { return &expr.Const{Val: types.NewInt(v)} }

func TestPushdownSplitsAcrossCrossJoin(t *testing.T) {
	left, right := mkScan("l"), mkScan("r")
	join := &Join{Type: JoinCross, Left: left, Right: right}
	// (l.a = 1) AND (r.a = 2) AND (l.b = r.b)
	pred := expr.AndAll([]expr.Expr{
		eq(cref(0), constInt(1)),
		eq(cref(2), constInt(2)),
		eq(cref(1), cref(3)),
	})
	out := Rewrite(&Filter{Input: join, Pred: pred})
	j, ok := out.(*Join)
	if !ok {
		t.Fatalf("root = %T, want *Join\n%s", out, Explain(out))
	}
	if j.Type != JoinInner || j.On == nil {
		t.Fatalf("cross join was not upgraded:\n%s", Explain(out))
	}
	lf, ok := j.Left.(*Filter)
	if !ok {
		t.Fatalf("left side = %T, want filter\n%s", j.Left, Explain(out))
	}
	if got := expr.Refs(lf.Pred, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("left filter refs = %v", got)
	}
	rf, ok := j.Right.(*Filter)
	if !ok {
		t.Fatalf("right side = %T, want filter\n%s", j.Right, Explain(out))
	}
	// The right-side conjunct was re-based onto the right schema.
	if got := expr.Refs(rf.Pred, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("right filter refs = %v", got)
	}
}

func TestPushdownThroughGraphMatch(t *testing.T) {
	in := mkScan("t")
	edge := mkScan("e")
	gm := &GraphMatch{
		Input: in, Edge: edge,
		X: cref(0), Y: cref(1), SrcIdx: 0, DstIdx: 1,
		Specs: []CheapestSpec{{Weight: constInt(1), CostKind: types.KindInt, CostName: "cost"}},
		Sch: append(append(storage.Schema{}, in.Sch...),
			storage.ColMeta{Name: "cost", Kind: types.KindInt}),
	}
	// One conjunct on the input column, one on the generated cost.
	pred := expr.AndAll([]expr.Expr{
		eq(cref(0), constInt(5)),
		eq(cref(2), constInt(9)), // cost column
	})
	out := Rewrite(&Filter{Input: gm, Pred: pred})
	top, ok := out.(*Filter)
	if !ok {
		t.Fatalf("cost conjunct must stay above the match:\n%s", Explain(out))
	}
	g, ok := top.Input.(*GraphMatch)
	if !ok {
		t.Fatalf("expected GraphMatch below filter:\n%s", Explain(out))
	}
	if _, ok := g.Input.(*Filter); !ok {
		t.Fatalf("input conjunct must be pushed below the match:\n%s", Explain(out))
	}
}

func TestPushdownLeftJoinOnlyPreservedSide(t *testing.T) {
	left, right := mkScan("l"), mkScan("r")
	join := &Join{Type: JoinLeft, Left: left, Right: right, On: eq(cref(0), cref(2))}
	pred := expr.AndAll([]expr.Expr{
		eq(cref(1), constInt(1)), // left-only: may push
		eq(cref(3), constInt(2)), // right-only: must stay
	})
	out := Rewrite(&Filter{Input: join, Pred: pred})
	top, ok := out.(*Filter)
	if !ok {
		t.Fatalf("right conjunct must stay above the left join:\n%s", Explain(out))
	}
	j := top.Input.(*Join)
	if _, ok := j.Left.(*Filter); !ok {
		t.Fatalf("left conjunct must move below:\n%s", Explain(out))
	}
	if _, ok := j.Right.(*Filter); ok {
		t.Fatalf("right side of a left join must stay unfiltered:\n%s", Explain(out))
	}
}

func TestRewriteMergesStackedFilters(t *testing.T) {
	s := mkScan("t")
	f := &Filter{
		Input: &Filter{Input: s, Pred: eq(cref(0), constInt(1))},
		Pred:  eq(cref(1), constInt(2)),
	}
	out := Rewrite(f)
	top, ok := out.(*Filter)
	if !ok {
		t.Fatalf("root = %T", out)
	}
	if _, ok := top.Input.(*Scan); !ok {
		t.Fatalf("filters were not merged:\n%s", Explain(out))
	}
	if len(expr.SplitConjuncts(top.Pred, nil)) != 2 {
		t.Fatalf("merged predicate should hold both conjuncts: %s", top.Pred)
	}
}

func TestExplainRendersTree(t *testing.T) {
	s := mkScan("t")
	p := &Project{Input: &Filter{Input: s, Pred: eq(cref(0), constInt(1))},
		Exprs: []expr.Expr{cref(0)},
		Sch:   storage.Schema{{Name: "a", Kind: types.KindInt}}}
	out := Explain(p)
	for _, want := range []string{"Project", "Filter", "Scan t"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestSchemasOfComposedNodes(t *testing.T) {
	l, r := mkScan("l"), mkScan("r")
	j := &Join{Type: JoinCross, Left: l, Right: r}
	if len(j.Schema()) != 4 {
		t.Fatalf("join schema = %v", j.Schema())
	}
	srt := &Sort{Input: j}
	if len(srt.Schema()) != 4 {
		t.Fatal("sort must preserve schema")
	}
	d := &Distinct{Input: srt}
	if len(d.Schema()) != 4 {
		t.Fatal("distinct must preserve schema")
	}
	lim := &Limit{Input: d}
	if len(lim.Schema()) != 4 {
		t.Fatal("limit must preserve schema")
	}
	so := &SetOp{Op: "UNION", Left: l, Right: r}
	if len(so.Schema()) != 2 {
		t.Fatal("set op exposes the left schema")
	}
}

func TestConstantConjunctLandsOnLeaf(t *testing.T) {
	l, r := mkScan("l"), mkScan("r")
	join := &Join{Type: JoinCross, Left: l, Right: r}
	pred := eq(constInt(1), constInt(1)) // no column refs
	out := Rewrite(&Filter{Input: join, Pred: pred})
	// The conjunct sinks to the left leaf; semantics are unchanged.
	j, ok := out.(*Join)
	if !ok {
		t.Fatalf("root = %T:\n%s", out, Explain(out))
	}
	if _, ok := j.Left.(*Filter); !ok {
		t.Fatalf("constant conjunct should sink left:\n%s", Explain(out))
	}
}
