package wire

// Chunked result streaming. A streamed query response is a sequence of
// newline-delimited JSON frames (NDJSON, Content-Type
// application/x-ndjson) instead of one buffered QueryResponse object:
//
//	{"columns":["a","b"]}             header: exactly one, first
//	{"rows":[[1,2],[3,4]]}            batch: zero or more row batches
//	{"row_count":4}                   trailer: exactly one, last
//
// A failure after the header replaces the success trailer with
//
//	{"row_count":2,"error":{"code":"canceled","message":"..."}}
//
// where row_count reports the rows delivered before the error (a
// client must treat such a result as partial and discard it). Frames
// are classified by key: "columns" marks the header, "rows" a batch,
// "row_count" the trailer. Cells use exactly the encoding of the
// buffered QueryResponse (see the package comment), so folding the
// batches back together — FoldStream — reproduces the buffered
// response byte for byte; the server's differential tests lean on
// that equivalence.
//
// The writer emits one frame per Batch call and flushes after every
// frame when the destination supports it, so the response leaves the
// server incrementally: at no point does the full result set exist as
// one encoded blob server-side.

import (
	"encoding/json"
	"fmt"
	"io"

	"graphsql/internal/fault"
	"graphsql/internal/trace"
)

// StreamContentType is the Content-Type of chunked query responses.
const StreamContentType = "application/x-ndjson"

// DefaultBatchRows is the row-batch size used when a streaming request
// does not specify one.
const DefaultBatchRows = 1024

// MaxBatchRows caps client-requested batch sizes so one frame stays a
// bounded fraction of a large result.
const MaxBatchRows = 16384

// StreamHeader is the first frame of a chunked response.
type StreamHeader struct {
	Columns []string `json:"columns"`
}

// StreamBatch is one row-batch frame.
type StreamBatch struct {
	Rows [][]any `json:"rows"`
}

// StreamTrailer is the final frame: the total delivered row count and,
// on failure, the error that cut the stream short. When the request
// asked for a trace, the span tree rides in the trailer (it is only
// complete once the last row has been sent).
type StreamTrailer struct {
	RowCount int         `json:"row_count"`
	Trace    *trace.Node `json:"trace,omitempty"`
	Error    *Error      `json:"error,omitempty"`
}

// flusher is the subset of http.Flusher the writer uses; declared
// locally so the wire package stays free of net/http.
type flusher interface{ Flush() }

// StreamWriter emits a chunked response frame by frame. Methods must
// be called in protocol order: Header once, Batch any number of times,
// then exactly one of Trailer or Fail.
type StreamWriter struct {
	w       io.Writer
	enc     *json.Encoder
	sent    int
	batches int
}

// NewStreamWriter wraps a destination (typically an
// http.ResponseWriter, which is flushed after every frame).
func NewStreamWriter(w io.Writer) *StreamWriter {
	return &StreamWriter{w: w, enc: json.NewEncoder(w)}
}

// Batches reports the number of batch frames written so far.
func (sw *StreamWriter) Batches() int { return sw.batches }

// RowsSent reports the number of rows written so far.
func (sw *StreamWriter) RowsSent() int { return sw.sent }

func (sw *StreamWriter) frame(v any) error {
	if err := sw.enc.Encode(v); err != nil {
		return err
	}
	if f, ok := sw.w.(flusher); ok {
		f.Flush()
	}
	return nil
}

// Header writes the header frame.
func (sw *StreamWriter) Header(columns []string) error {
	if columns == nil {
		columns = []string{}
	}
	return sw.frame(&StreamHeader{Columns: columns})
}

// Batch encodes and writes one row batch (cells are converted with the
// same mapping as the buffered response). Empty batches are skipped.
func (sw *StreamWriter) Batch(rows [][]any) error {
	if len(rows) == 0 {
		return nil
	}
	if err := fault.Inject(fault.PointStreamEncode); err != nil {
		return err
	}
	enc := make([][]any, len(rows))
	for i, row := range rows {
		er := make([]any, len(row))
		for j, v := range row {
			er[j] = encodeCell(v)
		}
		enc[i] = er
	}
	sw.sent += len(rows)
	sw.batches++
	return sw.frame(&StreamBatch{Rows: enc})
}

// Trailer writes the success trailer. tr, when non-nil, is the query's
// span tree (requested via "trace": true).
func (sw *StreamWriter) Trailer(tr *trace.Node) error {
	return sw.frame(&StreamTrailer{RowCount: sw.sent, Trace: tr})
}

// Fail writes an error trailer carrying the rows delivered so far.
func (sw *StreamWriter) Fail(code string, err error) error {
	return sw.frame(&StreamTrailer{RowCount: sw.sent, Error: &Error{Code: code, Message: err.Error()}})
}

// FoldStream reads a complete chunked response and folds it back into
// the buffered QueryResponse form, returning the number of row-batch
// frames it saw. Numbers are preserved verbatim (json.Number), so
// re-encoding the folded response reproduces the bytes a buffered
// execution of the same query would have produced. A stream whose
// trailer carries an error folds into a QueryResponse with that Error
// (and the partial rows discarded), mirroring the buffered error shape.
func FoldStream(r io.Reader) (*QueryResponse, int, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	// frame is the union of all three frame shapes.
	type frame struct {
		Columns  *[]string   `json:"columns"`
		Rows     *[][]any    `json:"rows"`
		RowCount *int        `json:"row_count"`
		Trace    *trace.Node `json:"trace"`
		Error    *Error      `json:"error"`
	}
	out := &QueryResponse{}
	batches := 0
	sawHeader, sawTrailer := false, false
	for {
		var f frame
		if err := dec.Decode(&f); err == io.EOF {
			break
		} else if err != nil {
			return nil, batches, fmt.Errorf("stream: bad frame: %w", err)
		}
		switch {
		case sawTrailer:
			return nil, batches, fmt.Errorf("stream: frame after trailer")
		case f.Columns != nil:
			if sawHeader {
				return nil, batches, fmt.Errorf("stream: duplicate header")
			}
			sawHeader = true
			if len(*f.Columns) > 0 {
				out.Columns = *f.Columns
			}
		case f.Rows != nil:
			if !sawHeader {
				return nil, batches, fmt.Errorf("stream: batch before header")
			}
			batches++
			out.Rows = append(out.Rows, *f.Rows...)
		case f.RowCount != nil || f.Error != nil:
			sawTrailer = true
			out.Trace = f.Trace
			if f.Error != nil {
				// Partial rows are not a result; fold into the buffered
				// error shape.
				return &QueryResponse{Error: f.Error}, batches, nil
			}
			if f.RowCount == nil || *f.RowCount != len(out.Rows) {
				return nil, batches, fmt.Errorf("stream: trailer row_count %v != %d delivered rows", f.RowCount, len(out.Rows))
			}
			out.RowCount = *f.RowCount
		default:
			return nil, batches, fmt.Errorf("stream: unrecognized frame")
		}
	}
	if !sawTrailer {
		return nil, batches, fmt.Errorf("stream: truncated (no trailer)")
	}
	return out, batches, nil
}
