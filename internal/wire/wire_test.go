package wire

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"graphsql"
)

func TestEncodeCells(t *testing.T) {
	res := &graphsql.Result{
		Columns: []string{"i", "f", "s", "b", "d", "n", "p"},
		Rows: [][]any{{
			int64(9007199254740993), // > 2^53: must stay exact
			1.5,
			"x",
			true,
			time.Date(2017, 5, 19, 0, 0, 0, 0, time.UTC),
			nil,
			&graphsql.Path{Columns: []string{"src", "dst"}, Rows: [][]any{{int64(1), int64(2)}}},
		}},
	}
	data, err := FromResult(res).Encode()
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	for _, want := range []string{
		`9007199254740993`,
		`1.5`,
		`"x"`,
		`true`,
		`"2017-05-19"`,
		`null`,
		`{"columns":["src","dst"],"rows":[[1,2]]}`,
		`"row_count":1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("encoding missing %s:\n%s", want, got)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	res := &graphsql.Result{Columns: []string{"a"}, Rows: [][]any{{int64(1)}, {int64(2)}}}
	a, _ := FromResult(res).Encode()
	b, _ := FromResult(res).Encode()
	if string(a) != string(b) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestDecodeRequestIntegerArgs(t *testing.T) {
	req, err := DecodeRequest([]byte(`{"sql":"SELECT ?","args":[1, 2.5, "x", true, null, 9007199254740993]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := req.Args[0].(int64); !ok {
		t.Fatalf("arg 0: %T, want int64", req.Args[0])
	}
	if _, ok := req.Args[1].(float64); !ok {
		t.Fatalf("arg 1: %T, want float64", req.Args[1])
	}
	if req.Args[2] != "x" || req.Args[3] != true || req.Args[4] != nil {
		t.Fatalf("args: %+v", req.Args)
	}
	if got := req.Args[5].(int64); got != 9007199254740993 {
		t.Fatalf("large integer lost precision: %d", got)
	}
}

func TestDecodeRequestRejectsGarbage(t *testing.T) {
	if _, err := DecodeRequest([]byte(`{"sql":`)); err == nil {
		t.Fatal("expected error for truncated JSON")
	}
	if _, err := DecodeRequest([]byte(`{"sql":"q","args":[[1]]}`)); err == nil {
		t.Fatal("expected error for nested-array argument")
	}
}

func TestErrorPayload(t *testing.T) {
	data, err := json.Marshal(FromError(CodeQueueFull, ErrTest))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"code":"queue_full"`) {
		t.Fatalf("bad error payload: %s", data)
	}
}

// ErrTest is a fixture error.
var ErrTest = &Error{Code: "x", Message: "boom"}
