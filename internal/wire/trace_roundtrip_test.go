package wire

import (
	"bytes"
	"encoding/json"
	"testing"

	"graphsql/internal/trace"
)

// sampleTrace builds a span tree with every feature a real query
// produces: nested operator spans, row counts, workers and frontier
// level samples.
func sampleTrace() *trace.Node {
	tr := trace.New()
	adm := tr.Begin(trace.NoSpan, "admission")
	tr.End(adm)
	ex := tr.Begin(trace.NoSpan, "execute")
	proj := tr.Begin(ex, "Project")
	gm := tr.Begin(proj, "GraphMatch")
	tr.SetRows(gm, 7)
	tr.SetWorkers(gm, 2)
	tr.AddLevel(gm, 0, 1)
	tr.AddLevel(gm, 1, 42)
	tr.End(gm)
	tr.SetRows(proj, 7)
	tr.End(proj)
	tr.End(ex)
	return tr.Tree()
}

// TestTraceRoundTripBuffered: a traced QueryResponse survives its wire
// encoding — the decoded trace re-encodes to the identical bytes.
func TestTraceRoundTripBuffered(t *testing.T) {
	resp := &QueryResponse{
		Columns:  []string{"a"},
		Rows:     [][]any{{int64(1)}},
		RowCount: 1,
		Trace:    sampleTrace(),
	}
	data, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var back QueryResponse
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Trace == nil {
		t.Fatal("trace lost in round trip")
	}
	want, _ := json.Marshal(resp.Trace)
	got, _ := json.Marshal(back.Trace)
	if !bytes.Equal(want, got) {
		t.Fatalf("trace changed in round trip:\nwant %s\ngot  %s", want, got)
	}
	if len(back.Trace.Children) != 2 {
		t.Fatalf("root children: %d, want 2", len(back.Trace.Children))
	}
	gm := back.Trace.Children[1].Children[0].Children[0]
	if gm.Rows == nil || *gm.Rows != 7 || gm.Workers != 2 || len(gm.Levels) != 2 || gm.Levels[1].Size != 42 {
		t.Fatalf("GraphMatch node mangled: %+v", gm)
	}
}

// TestTraceRoundTripStream: the trailer frame carries the span tree
// and FoldStream folds it back into the buffered response shape.
func TestTraceRoundTripStream(t *testing.T) {
	tree := sampleTrace()
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	if err := sw.Header([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Batch([][]any{{int64(1)}, {int64(2)}}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Trailer(tree); err != nil {
		t.Fatal(err)
	}
	folded, batches, err := FoldStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if batches != 1 || folded.RowCount != 2 {
		t.Fatalf("fold: batches=%d rows=%d", batches, folded.RowCount)
	}
	if folded.Trace == nil {
		t.Fatal("trace lost in stream trailer")
	}
	want, _ := json.Marshal(tree)
	got, _ := json.Marshal(folded.Trace)
	if !bytes.Equal(want, got) {
		t.Fatalf("trace changed through stream:\nwant %s\ngot  %s", want, got)
	}
}

// TestUntracedEncodingUnchanged pins the compatibility contract: a
// response without a trace encodes without any trace key, and an
// untraced trailer frame stays byte-identical to the pre-trace format.
func TestUntracedEncodingUnchanged(t *testing.T) {
	resp := &QueryResponse{Columns: []string{"a"}, Rows: [][]any{{int64(1)}}, RowCount: 1}
	data, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("trace")) {
		t.Fatalf("untraced response mentions trace: %s", data)
	}
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	if err := sw.Trailer(nil); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "{\"row_count\":0}\n" {
		t.Fatalf("untraced trailer frame changed: %q", got)
	}
}
