package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"graphsql"
)

// TestStreamRoundTrip writes a result as chunked frames and folds it
// back, requiring the folded encoding to be byte-identical to the
// buffered encoding of the same result.
func TestStreamRoundTrip(t *testing.T) {
	res := &graphsql.Result{
		Columns: []string{"id", "score", "name", "ok", "day", "path", "missing"},
		Rows: [][]any{
			{int64(1), 1.5, "a", true, time.Date(2017, 5, 19, 0, 0, 0, 0, time.UTC),
				&graphsql.Path{Columns: []string{"s", "d"}, Rows: [][]any{{int64(1), int64(2)}}}, nil},
			{int64(2), 2.25, "b", false, time.Date(2017, 5, 20, 0, 0, 0, 0, time.UTC),
				&graphsql.Path{Columns: []string{"s", "d"}}, nil},
			{int64(3), -0.5, "c", true, time.Date(2017, 5, 21, 0, 0, 0, 0, time.UTC), nil, nil},
		},
	}
	want, err := FromResult(res).Encode()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	if err := sw.Header(res.Columns); err != nil {
		t.Fatal(err)
	}
	// Two-row then one-row batches exercise multi-frame folding.
	if err := sw.Batch(res.Rows[:2]); err != nil {
		t.Fatal(err)
	}
	if err := sw.Batch(res.Rows[2:]); err != nil {
		t.Fatal(err)
	}
	if err := sw.Trailer(nil); err != nil {
		t.Fatal(err)
	}

	folded, batches, err := FoldStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if batches != 2 {
		t.Fatalf("expected 2 batch frames, got %d", batches)
	}
	got, err := folded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("folded stream differs from buffered encoding\ngot:  %s\nwant: %s", got, want)
	}
}

// TestStreamErrorTrailer folds a stream cut short by an error into the
// buffered error shape, discarding the partial rows.
func TestStreamErrorTrailer(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	if err := sw.Header([]string{"x"}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Batch([][]any{{int64(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Fail(CodeCanceled, errors.New("client went away")); err != nil {
		t.Fatal(err)
	}
	folded, batches, err := FoldStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if batches != 1 {
		t.Fatalf("expected 1 batch frame, got %d", batches)
	}
	if folded.Error == nil || folded.Error.Code != CodeCanceled || len(folded.Rows) != 0 {
		t.Fatalf("unexpected fold of error stream: %+v", folded)
	}
}

// TestStreamEmptyResult: header + trailer only, zero batches.
func TestStreamEmptyResult(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	if err := sw.Header([]string{"x"}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Batch(nil); err != nil { // skipped, not a frame
		t.Fatal(err)
	}
	if err := sw.Trailer(nil); err != nil {
		t.Fatal(err)
	}
	folded, batches, err := FoldStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if batches != 0 || folded.RowCount != 0 || folded.Error != nil {
		t.Fatalf("unexpected fold: %+v (%d batches)", folded, batches)
	}
}

// TestStreamTruncated: a stream without a trailer must not fold.
func TestStreamTruncated(t *testing.T) {
	in := `{"columns":["x"]}` + "\n" + `{"rows":[[1]]}` + "\n"
	if _, _, err := FoldStream(strings.NewReader(in)); err == nil {
		t.Fatal("truncated stream folded without error")
	}
	// A row_count that disagrees with the delivered rows is rejected.
	in += `{"row_count":7}` + "\n"
	if _, _, err := FoldStream(strings.NewReader(in)); err == nil {
		t.Fatal("row_count mismatch folded without error")
	}
}
