// Package wire defines the structured result and error encoding shared
// by the gsqld HTTP server and the gsql CLI's --json mode. The encoding
// is deterministic — the same Result always marshals to the same bytes
// — which is what the server's differential tests lean on: an HTTP
// response body must be byte-identical to the wire encoding of the same
// query executed in-process.
//
// Cell mapping (lossless for everything the engine produces):
//
//	NULL              -> null
//	BIGINT            -> JSON number (int64, exact)
//	DOUBLE            -> JSON number (shortest round-trip form)
//	VARCHAR / BOOLEAN -> JSON string / bool
//	DATE              -> "YYYY-MM-DD" string
//	nested-table path -> {"columns": [...], "rows": [[...], ...]}
//
// Large results can alternatively be streamed as a sequence of
// newline-delimited frames (header, row batches, trailer) with the
// identical cell encoding — see stream.go — and hot statements can be
// registered once and re-executed by id via the PrepareRequest /
// ExecuteRequest payloads.
package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"graphsql"
	"graphsql/internal/trace"
)

// Error codes. Stable strings, part of the wire contract.
const (
	// CodeInvalidRequest marks malformed HTTP/JSON input.
	CodeInvalidRequest = "invalid_request"
	// CodeSQL marks parse, bind and execution errors.
	CodeSQL = "sql_error"
	// CodeCanceled marks a query stopped by client disconnect.
	CodeCanceled = "canceled"
	// CodeTimeout marks a query stopped by the server's deadline.
	CodeTimeout = "timeout"
	// CodeQueueFull marks admission rejection (queue at capacity).
	CodeQueueFull = "queue_full"
	// CodeQueueTimeout marks a query that waited in the admission queue
	// past the server's queue-wait deadline without starting. Distinct
	// from CodeTimeout: no execution happened, so retrying (after the
	// response's Retry-After hint) is always safe.
	CodeQueueTimeout = "queue_timeout"
	// CodePanic marks a query whose execution panicked server-side; the
	// panic was contained and the server keeps serving. The statement
	// may have partially applied if it was a write.
	CodePanic = "panic"
	// CodeUnknownGraph marks a request naming an unregistered graph.
	CodeUnknownGraph = "unknown_graph"
	// CodeInternal marks server-side failures (encoding, invariants).
	CodeInternal = "internal"
)

// Error is the structured error payload.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// QueryRequest is the POST /query payload.
type QueryRequest struct {
	// Graph names the target graph; empty means the server's default.
	Graph string `json:"graph,omitempty"`
	// Session is an opaque client-chosen session id; requests sharing
	// it share prepared plans and SET settings. Empty = one-shot.
	Session string `json:"session,omitempty"`
	// SQL is the statement text (? placeholders bind Args).
	SQL string `json:"sql"`
	// Args are the positional arguments. Decode with DecodeRequest so
	// integral numbers arrive as int64, not float64.
	Args []any `json:"args,omitempty"`
	// Workers caps this statement's worker budget (0 = inherit the
	// session setting, then the server default).
	Workers int `json:"workers,omitempty"`
	// TimeoutMillis bounds execution; 0 inherits the server default.
	TimeoutMillis int `json:"timeout_ms,omitempty"`
	// Stream selects the chunked NDJSON response encoding (see
	// stream.go) instead of one buffered QueryResponse object.
	Stream bool `json:"stream,omitempty"`
	// BatchRows caps the rows per streamed batch frame (0 =
	// DefaultBatchRows, clamped to MaxBatchRows).
	BatchRows int `json:"batch_rows,omitempty"`
	// Trace requests the query's span tree (plan resolution, admission
	// wait, per-operator timings, solver frontier levels) in the
	// response: the `trace` field of the buffered QueryResponse, or of
	// the trailer frame when streaming.
	Trace bool `json:"trace,omitempty"`
}

// PrepareRequest is the POST /prepare payload: parse (and, for SELECT,
// bind and rewrite) a statement into the named session's plan cache and
// register it under a server-assigned statement id. Args optionally
// supply representative values for ? parameter kind inference.
type PrepareRequest struct {
	// Graph names the target graph; empty means the server's default.
	Graph string `json:"graph,omitempty"`
	// Session names the owning session; required (prepared statements
	// live in session state).
	Session string `json:"session"`
	// SQL is the statement text (? placeholders bind /execute args).
	SQL string `json:"sql"`
	// Args are optional representative arguments for kind inference.
	Args []any `json:"args,omitempty"`
}

// PrepareResponse reports a registered statement.
type PrepareResponse struct {
	StatementID string `json:"statement_id,omitempty"`
	NumParams   int    `json:"num_params"`
	Error       *Error `json:"error,omitempty"`
}

// ExecuteRequest is the POST /execute payload: run a statement
// registered by /prepare. The response is a QueryResponse (or a
// chunked stream when Stream is set), exactly like POST /query.
type ExecuteRequest struct {
	// Session names the owning session; required.
	Session string `json:"session"`
	// StatementID is the id /prepare returned.
	StatementID string `json:"statement_id"`
	// Args bind the statement's ? placeholders.
	Args []any `json:"args,omitempty"`
	// Workers, TimeoutMillis, Stream, BatchRows and Trace behave exactly
	// as on QueryRequest.
	Workers       int  `json:"workers,omitempty"`
	TimeoutMillis int  `json:"timeout_ms,omitempty"`
	Stream        bool `json:"stream,omitempty"`
	BatchRows     int  `json:"batch_rows,omitempty"`
	Trace         bool `json:"trace,omitempty"`
}

// QueryResponse is the POST /query result payload. Exactly one of
// (Columns+Rows) and Error is populated. Trace is attached only when
// the request set "trace": true; it never affects the row payload, so
// untraced responses stay byte-identical to earlier releases.
type QueryResponse struct {
	Columns  []string    `json:"columns,omitempty"`
	Rows     [][]any     `json:"rows,omitempty"`
	RowCount int         `json:"row_count"`
	Trace    *trace.Node `json:"trace,omitempty"`
	Error    *Error      `json:"error,omitempty"`
}

// PathValue is the wire form of a nested-table path cell.
type PathValue struct {
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
}

// LoadRequest is the POST /graphs/{name}/load payload: a SQL script
// that builds the graph's dataset from scratch, plus optional graph
// indexes to prebuild. The server constructs a fresh database, runs the
// script, builds the indexes, and only then swaps it in — readers keep
// the previous generation until the swap (copy-on-swap).
type LoadRequest struct {
	Script  string      `json:"script"`
	Indexes []IndexSpec `json:"indexes,omitempty"`
}

// IndexSpec names one graph index to prebuild at load time.
type IndexSpec struct {
	Table string `json:"table"`
	Src   string `json:"src"`
	Dst   string `json:"dst"`
}

// LoadResponse reports a completed load.
type LoadResponse struct {
	Graph      string `json:"graph"`
	Generation int64  `json:"generation"`
	Tables     int    `json:"tables"`
	Error      *Error `json:"error,omitempty"`
}

// FromResult converts a materialized query result into its wire form.
func FromResult(res *graphsql.Result) *QueryResponse {
	out := &QueryResponse{Columns: res.Columns, RowCount: len(res.Rows)}
	if len(res.Rows) > 0 {
		out.Rows = make([][]any, len(res.Rows))
		for i, row := range res.Rows {
			enc := make([]any, len(row))
			for j, v := range row {
				enc[j] = encodeCell(v)
			}
			out.Rows[i] = enc
		}
	}
	return out
}

// FromError wraps an error into a response payload.
func FromError(code string, err error) *QueryResponse {
	return &QueryResponse{Error: &Error{Code: code, Message: err.Error()}}
}

// Encode marshals the response deterministically (json.Marshal emits
// struct fields in declaration order and map-free payloads verbatim).
func (r *QueryResponse) Encode() ([]byte, error) { return json.Marshal(r) }

func encodeCell(v any) any {
	switch t := v.(type) {
	case time.Time:
		return t.Format("2006-01-02")
	case *graphsql.Path:
		p := &PathValue{Columns: t.Columns, Rows: make([][]any, len(t.Rows))}
		for i, row := range t.Rows {
			enc := make([]any, len(row))
			for j, c := range row {
				enc[j] = encodeCell(c)
			}
			p.Rows[i] = enc
		}
		return p
	default:
		return v
	}
}

// DecodeRequest unmarshals a QueryRequest preserving integer arguments:
// a bare json.Unmarshal turns every number into float64, which would
// bind BIGINT vertex keys as DOUBLE. Numbers are decoded as
// json.Number and normalized to int64 when integral.
func DecodeRequest(data []byte) (*QueryRequest, error) {
	var req QueryRequest
	if err := unmarshalUseNumber(data, &req); err != nil {
		return nil, err
	}
	args, err := NormalizeArgs(req.Args)
	if err != nil {
		return nil, err
	}
	req.Args = args
	return &req, nil
}

// DecodePrepareRequest unmarshals a PrepareRequest with the same
// integer-preserving argument handling as DecodeRequest.
func DecodePrepareRequest(data []byte) (*PrepareRequest, error) {
	var req PrepareRequest
	if err := unmarshalUseNumber(data, &req); err != nil {
		return nil, err
	}
	args, err := NormalizeArgs(req.Args)
	if err != nil {
		return nil, err
	}
	req.Args = args
	return &req, nil
}

// DecodeExecuteRequest unmarshals an ExecuteRequest with the same
// integer-preserving argument handling as DecodeRequest.
func DecodeExecuteRequest(data []byte) (*ExecuteRequest, error) {
	var req ExecuteRequest
	if err := unmarshalUseNumber(data, &req); err != nil {
		return nil, err
	}
	args, err := NormalizeArgs(req.Args)
	if err != nil {
		return nil, err
	}
	req.Args = args
	return &req, nil
}

func unmarshalUseNumber(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	return dec.Decode(v)
}

// NormalizeArgs converts decoded JSON argument values into the types
// the facade binds: json.Number becomes int64 when integral and
// float64 otherwise; strings, bools and nulls pass through.
func NormalizeArgs(args []any) ([]any, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]any, len(args))
	for i, a := range args {
		switch t := a.(type) {
		case nil, string, bool:
			out[i] = a
		case json.Number:
			if n, err := t.Int64(); err == nil {
				out[i] = n
				continue
			}
			f, err := t.Float64()
			if err != nil {
				return nil, fmt.Errorf("argument %d: invalid number %q", i+1, t.String())
			}
			out[i] = f
		case float64:
			out[i] = t
		case int64, int:
			out[i] = t
		default:
			return nil, fmt.Errorf("argument %d: unsupported JSON type %T", i+1, a)
		}
	}
	return out, nil
}
