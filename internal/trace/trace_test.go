package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilTraceZeroAllocs pins the disabled path's contract: a nil
// *Trace must perform no allocations anywhere on the hot path, so the
// exec and solver seams can call it unconditionally.
func TestNilTraceZeroAllocs(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin(NoSpan, "op")
		tr.SetRows(sp, 42)
		tr.SetWorkers(sp, 4)
		tr.AddLevel(sp, 3, 128)
		tr.End(sp)
		_ = tr.Duration(sp)
		_ = tr.CurrentStage()
		tr.SetPlanCacheHit(true)
		tr.SetResultCacheHit(true)
		_ = tr.Stages()
		_ = tr.Tree()
	})
	if allocs != 0 {
		t.Fatalf("nil trace allocated %.1f per op, want 0", allocs)
	}
}

func TestSpanTreeAndRowsIn(t *testing.T) {
	tr := New()
	exec := tr.Begin(NoSpan, "execute")
	proj := tr.Begin(exec, "Project")
	scan1 := tr.Begin(proj, "Scan a")
	tr.SetRows(scan1, 10)
	tr.End(scan1)
	scan2 := tr.Begin(proj, "Scan b")
	tr.SetRows(scan2, 5)
	tr.AddLevel(scan2, 0, 1)
	tr.AddLevel(scan2, 1, 7)
	tr.SetWorkers(scan2, 3)
	tr.End(scan2)
	tr.SetRows(proj, 8)
	tr.End(proj)
	tr.End(exec)

	root := tr.Tree()
	if root.Name != "query" || len(root.Children) != 1 {
		t.Fatalf("root: %+v", root)
	}
	ex := root.Children[0]
	if ex.Name != "execute" || ex.Rows != nil || len(ex.Children) != 1 {
		t.Fatalf("execute node: %+v", ex)
	}
	pr := ex.Children[0]
	if pr.Rows == nil || *pr.Rows != 8 {
		t.Fatalf("project rows: %+v", pr.Rows)
	}
	// rows_in = sum of operator children's outputs.
	if pr.RowsIn == nil || *pr.RowsIn != 15 {
		t.Fatalf("project rows_in: %+v", pr.RowsIn)
	}
	if len(pr.Children) != 2 {
		t.Fatalf("project children: %d", len(pr.Children))
	}
	sc := pr.Children[1]
	if sc.Workers != 3 || len(sc.Levels) != 2 || sc.Levels[1] != (Level{Level: 1, Size: 7}) {
		t.Fatalf("scan b: %+v", sc)
	}

	text := Render(ex)
	for _, want := range []string{"Project (rows=8, rows_in=15", "level 0: frontier=1", "level 1: frontier=7", "workers=3"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered tree missing %q:\n%s", want, text)
		}
	}
}

func TestStagesAndCurrentStage(t *testing.T) {
	tr := New()
	a := tr.Begin(NoSpan, "admission")
	tr.End(a)
	e := tr.Begin(NoSpan, "execute")
	inner := tr.Begin(e, "Scan")
	if got := tr.CurrentStage(); got != "Scan" {
		t.Fatalf("CurrentStage = %q, want Scan", got)
	}
	tr.End(inner)
	if got := tr.CurrentStage(); got != "execute" {
		t.Fatalf("CurrentStage = %q, want execute", got)
	}
	tr.End(e)
	st := tr.Stages()
	if len(st) != 2 || st[0].Name != "admission" || st[1].Name != "execute" {
		t.Fatalf("Stages = %+v", st)
	}
	for _, s := range st {
		if s.Dur < 0 {
			t.Fatalf("negative stage duration: %+v", s)
		}
	}
}

// TestConcurrentLevelSamples exercises the solver-side contract: level
// samples arrive from worker goroutines while the coordinator opens
// and closes spans. Run under -race.
func TestConcurrentLevelSamples(t *testing.T) {
	tr := New()
	sp := tr.Begin(NoSpan, "GraphMatch")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.AddLevel(sp, int64(i), w)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		s := tr.Begin(sp, "op")
		tr.End(s)
	}
	wg.Wait()
	tr.End(sp)
	root := tr.Tree()
	gm := root.Children[0]
	if len(gm.Levels) != 400 {
		t.Fatalf("got %d level samples, want 400", len(gm.Levels))
	}
	if len(gm.Children) != 50 {
		t.Fatalf("got %d children, want 50", len(gm.Children))
	}
}

// TestDurationOpenSpan: open spans report elapsed-so-far, closed spans
// a fixed duration.
func TestDurationOpenSpan(t *testing.T) {
	tr := New()
	sp := tr.Begin(NoSpan, "execute")
	time.Sleep(2 * time.Millisecond)
	if d := tr.Duration(sp); d < time.Millisecond {
		t.Fatalf("open span duration %v, want >= 1ms", d)
	}
	tr.End(sp)
	d1 := tr.Duration(sp)
	time.Sleep(2 * time.Millisecond)
	if d2 := tr.Duration(sp); d2 != d1 {
		t.Fatalf("closed span duration moved: %v -> %v", d1, d2)
	}
}
