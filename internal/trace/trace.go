// Package trace is the per-query span recorder behind EXPLAIN ANALYZE,
// the "trace" wire field, the structured query log and the /queries
// in-flight listing.
//
// A *Trace is created once per query (or not at all) and threaded down
// the existing seams: the server brackets resolve/admission/encode, the
// facade brackets parse/fingerprint/plan-cache, exec.Execute opens one
// span per operator (rows out, wall time), and the shortest-path solver
// reports per-level frontier sizes through a callback installed from
// the trace carried in the context. All methods are nil-receiver-safe:
// a nil *Trace is the disabled path and performs no work and no
// allocations, so call sites never branch on "is tracing on".
//
// Timing uses a single time.Time epoch captured at New; every span
// start/end is a time.Since(epoch) — a monotonic-clock read — so spans
// are immune to wall-clock steps. Spans live in a slab preallocated
// with the trace (growing only past tracesSlabSize), keeping the traced
// path to one allocation per query in the common case.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// SpanID indexes a span within its Trace. The zero Trace has no spans;
// NoSpan is the parent of root-level spans and the id returned by every
// method on a nil Trace.
type SpanID int32

// NoSpan is the nil span id: the parent of top-level spans, and what a
// disabled (nil) Trace returns from Begin.
const NoSpan SpanID = -1

const slabSize = 24

type levelSample struct {
	level int64
	size  int
}

type span struct {
	name    string
	parent  SpanID
	start   time.Duration // offset from Trace epoch
	end     time.Duration // -1 while open
	rows    int64         // -1 = not an operator span
	batches int64         // pull-executor batches emitted; 0 = n/a
	workers int
	levels  []levelSample
}

// Trace records the spans of one query. Safe for concurrent use: the
// solver reports frontier levels from worker goroutines while the
// coordinator opens and closes operator spans.
type Trace struct {
	mu    sync.Mutex
	epoch time.Time
	spans []span
	slab  [slabSize]span

	planCacheHit    bool
	planCacheKnown  bool
	resultCacheHit  bool
	resultCacheSeen bool
}

// New returns an enabled trace whose clock starts now.
func New() *Trace {
	t := &Trace{epoch: time.Now()}
	t.spans = t.slab[:0]
	return t
}

// Begin opens a span under parent (NoSpan for a root-level span) and
// returns its id. On a nil Trace it returns NoSpan without allocating.
func (t *Trace) Begin(parent SpanID, name string) SpanID {
	if t == nil {
		return NoSpan
	}
	now := time.Since(t.epoch)
	t.mu.Lock()
	id := SpanID(len(t.spans))
	t.spans = append(t.spans, span{name: name, parent: parent, start: now, end: -1, rows: -1})
	t.mu.Unlock()
	return id
}

// End closes the span. Closing NoSpan (or any id on a nil Trace) is a
// no-op, so Begin/End pairs need no disabled-path branching.
func (t *Trace) End(id SpanID) {
	if t == nil || id < 0 {
		return
	}
	now := time.Since(t.epoch)
	t.mu.Lock()
	if int(id) < len(t.spans) {
		t.spans[id].end = now
	}
	t.mu.Unlock()
}

// SetRows marks the span as an operator span that produced n rows.
func (t *Trace) SetRows(id SpanID, n int64) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	if int(id) < len(t.spans) {
		t.spans[id].rows = n
	}
	t.mu.Unlock()
}

// AddBatch counts one batch emitted by a pull-executor operator span.
func (t *Trace) AddBatch(id SpanID) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	if int(id) < len(t.spans) {
		t.spans[id].batches++
	}
	t.mu.Unlock()
}

// SetWorkers records the worker budget active inside the span.
func (t *Trace) SetWorkers(id SpanID, n int) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	if int(id) < len(t.spans) {
		t.spans[id].workers = n
	}
	t.mu.Unlock()
}

// AddLevel appends one BFS frontier sample (level number, frontier
// size) to the span. Called from solver goroutines mid-traversal.
func (t *Trace) AddLevel(id SpanID, level int64, size int) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	if int(id) < len(t.spans) {
		t.spans[id].levels = append(t.spans[id].levels, levelSample{level, size})
	}
	t.mu.Unlock()
}

// Duration reports the recorded wall time of a closed span, or the
// elapsed-so-far of an open one. Zero on a nil Trace.
func (t *Trace) Duration(id SpanID) time.Duration {
	if t == nil || id < 0 {
		return 0
	}
	now := time.Since(t.epoch)
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.spans) {
		return 0
	}
	s := t.spans[id]
	if s.end < 0 {
		return now - s.start
	}
	return s.end - s.start
}

// CurrentStage names the most recently opened still-open span — what
// the query is doing right now. Empty when idle or on a nil Trace.
func (t *Trace) CurrentStage() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.spans) - 1; i >= 0; i-- {
		if t.spans[i].end < 0 {
			return t.spans[i].name
		}
	}
	return ""
}

// SetPlanCacheHit records whether the session plan cache served this
// query's plan; read back by the query log.
func (t *Trace) SetPlanCacheHit(hit bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.planCacheHit, t.planCacheKnown = hit, true
	t.mu.Unlock()
}

// PlanCacheHit reports the recorded plan-cache outcome; known is false
// when the query never reached plan resolution (or the trace is nil).
func (t *Trace) PlanCacheHit() (hit, known bool) {
	if t == nil {
		return false, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.planCacheHit, t.planCacheKnown
}

// SetResultCacheHit records the server result-cache outcome (the
// lookup happened; hit says whether it was served from memory).
func (t *Trace) SetResultCacheHit(hit bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.resultCacheHit, t.resultCacheSeen = hit, true
	t.mu.Unlock()
}

// ResultCacheHit reports the recorded result-cache outcome; seen is
// false when no cache lookup happened (or the trace is nil).
func (t *Trace) ResultCacheHit() (hit, seen bool) {
	if t == nil {
		return false, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.resultCacheHit, t.resultCacheSeen
}

// Stage is one top-level span in flat form: the query log and the
// per-stage latency histograms consume this view instead of the tree.
type Stage struct {
	Name string
	Dur  time.Duration
}

// Stages reports the root-level spans (parent NoSpan) in creation
// order; open spans report elapsed-so-far. Nil on a nil Trace.
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	now := time.Since(t.epoch)
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Stage
	for _, s := range t.spans {
		if s.parent != NoSpan {
			continue
		}
		e := s.end
		if e < 0 {
			e = now
		}
		out = append(out, Stage{Name: s.name, Dur: e - s.start})
	}
	return out
}

// Level is one frontier sample of a solver span in wire form.
type Level struct {
	Level int64 `json:"level"`
	Size  int   `json:"size"`
}

// Node is the wire form of a span subtree: what a traced /query
// response carries (buffered body or stream trailer) and what EXPLAIN
// ANALYZE renders. Field order is the deterministic JSON encoding
// order. Rows/RowsIn are pointers so non-operator spans omit them
// rather than reporting a spurious zero.
type Node struct {
	Name     string  `json:"name"`
	StartUS  int64   `json:"start_us"`
	DurUS    int64   `json:"dur_us"`
	Rows     *int64  `json:"rows,omitempty"`
	RowsIn   *int64  `json:"rows_in,omitempty"`
	Batches  int64   `json:"batches,omitempty"`
	Workers  int     `json:"workers,omitempty"`
	Levels   []Level `json:"levels,omitempty"`
	Children []*Node `json:"children,omitempty"`
}

// Tree snapshots the spans as a tree under a synthetic root named
// "query" spanning the whole trace. Open spans are reported as if they
// ended now. Nil on a nil Trace.
func (t *Trace) Tree() *Node {
	if t == nil {
		return nil
	}
	now := time.Since(t.epoch)
	t.mu.Lock()
	spans := make([]span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()

	root := &Node{Name: "query"}
	nodes := make([]*Node, len(spans))
	var end time.Duration
	for i, s := range spans {
		e := s.end
		if e < 0 {
			e = now
		}
		if e > end {
			end = e
		}
		n := &Node{
			Name:    s.name,
			StartUS: s.start.Microseconds(),
			DurUS:   (e - s.start).Microseconds(),
			Batches: s.batches,
			Workers: s.workers,
		}
		if s.rows >= 0 {
			rows := s.rows
			n.Rows = &rows
		}
		if len(s.levels) > 0 {
			n.Levels = make([]Level, len(s.levels))
			for j, l := range s.levels {
				n.Levels[j] = Level{Level: l.level, Size: l.size}
			}
		}
		nodes[i] = n
		if s.parent >= 0 && int(s.parent) < len(nodes) && nodes[s.parent] != nil {
			nodes[s.parent].Children = append(nodes[s.parent].Children, n)
		} else {
			root.Children = append(root.Children, n)
		}
	}
	root.DurUS = end.Microseconds()
	fillRowsIn(root)
	return root
}

// fillRowsIn derives each operator span's input row count as the sum of
// its operator children's outputs (a leaf scan has no input).
func fillRowsIn(n *Node) {
	var in int64
	seen := false
	for _, c := range n.Children {
		fillRowsIn(c)
		if c.Rows != nil {
			in += *c.Rows
			seen = true
		}
	}
	if n.Rows != nil && seen {
		n.RowsIn = &in
	}
}

// Render pretty-prints a span tree as the indented text block EXPLAIN
// ANALYZE and gsql -trace show: one line per span with actual rows and
// wall time, frontier samples as sub-lines of solver spans.
func Render(root *Node) string {
	if root == nil {
		return ""
	}
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Name)
		b.WriteString(" (")
		if n.Rows != nil {
			fmt.Fprintf(&b, "rows=%d, ", *n.Rows)
		}
		if n.RowsIn != nil {
			fmt.Fprintf(&b, "rows_in=%d, ", *n.RowsIn)
		}
		fmt.Fprintf(&b, "time=%s", durString(n.DurUS))
		if n.Workers > 0 {
			fmt.Fprintf(&b, ", workers=%d", n.Workers)
		}
		b.WriteString(")\n")
		for _, l := range n.Levels {
			b.WriteString(strings.Repeat("  ", depth+1))
			fmt.Fprintf(&b, "level %d: frontier=%d\n", l.Level, l.Size)
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return b.String()
}

func durString(us int64) string {
	return time.Duration(us * int64(time.Microsecond)).String()
}
