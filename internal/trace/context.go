package trace

import "context"

// The solver sits below packages that only receive a context.Context
// (core.PreparedGraph.MatchCtx takes no trace argument), so the active
// trace and the span the solver should report into ride the context.

type ctxKey struct{}

type ctxVal struct {
	t    *Trace
	span SpanID
}

// NewContext returns ctx carrying the trace and the span that solver
// frontier samples should attach to. A nil trace returns ctx unchanged.
func NewContext(ctx context.Context, t *Trace, span SpanID) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxVal{t, span})
}

// FromContext extracts the trace installed by NewContext, if any.
func FromContext(ctx context.Context) (*Trace, SpanID, bool) {
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	if !ok {
		return nil, NoSpan, false
	}
	return v.t, v.span, true
}
