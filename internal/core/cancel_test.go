package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// countdownCtx is a context whose Err flips to Canceled after a fixed
// number of Err calls — a deterministic stand-in for "the client
// disconnects while graph construction is in flight" that lets tests
// assert cancellation is observed inside the build's chunk loops, not
// only before or after them.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func newCountdownCtx(calls int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.left.Store(calls)
	return c
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// bigEdgeChunk builds m random edges over 9000 vertices — large enough
// to cross the parallel dictionary-encode and CSR thresholds.
func bigEdgeChunk(m int) *storage.Chunk {
	rng := rand.New(rand.NewSource(71))
	c := storage.NewChunk(storage.Schema{
		{Name: "s", Kind: types.KindInt},
		{Name: "d", Kind: types.KindInt},
	})
	sc := storage.NewColumn(types.KindInt, m)
	dc := storage.NewColumn(types.KindInt, m)
	for i := 0; i < m; i++ {
		sc.AppendInt(int64(rng.Intn(9000)))
		dc.AppendInt(int64(rng.Intn(9000)))
	}
	c.Cols = []*storage.Column{sc, dc}
	return c
}

// TestBuildGraphCtxPreCanceled: a context dead on arrival aborts the
// build before any phase runs, at every parallelism setting.
func TestBuildGraphCtxPreCanceled(t *testing.T) {
	c := bigEdgeChunk(70000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range []int{1, 4} {
		if _, err := BuildGraphCtx(ctx, c, 0, 1, p); !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: expected context.Canceled, got %v", p, err)
		}
	}
}

// TestBuildGraphCtxMidBuild cancels after a bounded number of Err
// polls — few enough that the cancellation lands inside the encode/CSR
// chunk loops — and requires the build to abort with the context's
// error rather than completing.
func TestBuildGraphCtxMidBuild(t *testing.T) {
	c := bigEdgeChunk(70000)
	for _, p := range []int{1, 4} {
		// The build polls every cancelCheckInterval (4096) keys/rows;
		// 70k edges × 2 columns × several phases yields well over 60
		// polls, so a budget of 3 cancels mid-flight, never post-hoc.
		ctx := newCountdownCtx(3)
		if _, err := BuildGraphCtx(ctx, c, 0, 1, p); !errors.Is(err, context.Canceled) {
			t.Fatalf("parallelism %d: expected mid-build cancellation, got %v", p, err)
		}
	}
}

// TestBuildGraphCtxUncanceled: with a context that never fires, the
// ctx-threaded build is bit-identical to the plain one.
func TestBuildGraphCtxUncanceled(t *testing.T) {
	c := bigEdgeChunk(70000)
	want, err := BuildGraphP(c, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := BuildGraphCtx(context.Background(), c, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.CSR, got.CSR) {
		t.Fatal("ctx-threaded build produced a different CSR")
	}
	if want.Dict.Len() != got.Dict.Len() {
		t.Fatalf("dictionary size %d != %d", got.Dict.Len(), want.Dict.Len())
	}
}

// TestRefreshCtxCanceledRebuild forces a delta-overflow rebuild with a
// dead context and requires the index to stay on its previous snapshot
// (same applied rows as before the call) instead of absorbing half an
// update.
func TestRefreshCtxCanceledRebuild(t *testing.T) {
	c := bigEdgeChunk(70000)
	// Snapshot over the first half of the rows.
	half := c.Gather(seqRows(35000))
	dg, err := NewDynamicGraphP(half, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	applied := dg.AppliedRows()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Doubling the edge count blows the default 25% rebuild threshold,
	// so this refresh takes the full-rebuild path — which must abort.
	if _, err := dg.RefreshCtx(ctx, c); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled from rebuild, got %v", err)
	}
	if got := dg.AppliedRows(); got != applied {
		t.Fatalf("canceled rebuild moved appliedRows: %d -> %d", applied, got)
	}
	// The index still answers over its old snapshot afterwards.
	if _, err := dg.RefreshCtx(context.Background(), c); err != nil {
		t.Fatalf("refresh after canceled rebuild: %v", err)
	}
	if got := dg.AppliedRows(); got != 70000 {
		t.Fatalf("post-cancel refresh applied %d rows, want 70000", got)
	}
}

func seqRows(n int) []int {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	return rows
}
