package core

import (
	"strings"
	"testing"

	"graphsql/internal/expr"
	"graphsql/internal/plan"
	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// edgeChunk builds an edge chunk (s BIGINT, d BIGINT, w BIGINT).
func edgeChunk(edges [][3]int64) *storage.Chunk {
	c := storage.NewChunk(storage.Schema{
		{Name: "s", Kind: types.KindInt},
		{Name: "d", Kind: types.KindInt},
		{Name: "w", Kind: types.KindInt},
	})
	for _, e := range edges {
		c.AppendRow([]types.Value{types.NewInt(e[0]), types.NewInt(e[1]), types.NewInt(e[2])})
	}
	return c
}

func TestBuildGraphIntKeys(t *testing.T) {
	pg, err := BuildGraph(edgeChunk([][3]int64{{10, 20, 1}, {20, 30, 1}}), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pg.NumVertices() != 3 || pg.NumEdges() != 2 {
		t.Fatalf("|V|=%d |E|=%d", pg.NumVertices(), pg.NumEdges())
	}
	if pg.KeyKind != types.KindInt {
		t.Fatalf("key kind = %v", pg.KeyKind)
	}
}

func TestBuildGraphErrors(t *testing.T) {
	mixed := storage.NewChunk(storage.Schema{
		{Name: "s", Kind: types.KindInt},
		{Name: "d", Kind: types.KindString},
	})
	if _, err := BuildGraph(mixed, 0, 1); err == nil || !strings.Contains(err.Error(), "differs") {
		t.Fatalf("expected kind mismatch, got %v", err)
	}
	if _, err := BuildGraph(edgeChunk(nil), 0, 9); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestBuildGraphCompactsNullEndpoints(t *testing.T) {
	c := storage.NewChunk(storage.Schema{
		{Name: "s", Kind: types.KindInt},
		{Name: "d", Kind: types.KindInt},
	})
	c.AppendRow([]types.Value{types.NewInt(1), types.NewInt(2)})
	c.AppendRow([]types.Value{types.NewNull(types.KindInt), types.NewInt(3)})
	c.AppendRow([]types.Value{types.NewInt(2), types.NewNull(types.KindInt)})
	pg, err := BuildGraph(c, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pg.NumEdges() != 1 || pg.NumVertices() != 2 {
		t.Fatalf("|V|=%d |E|=%d after compaction", pg.NumVertices(), pg.NumEdges())
	}
}

func TestReachabilityHelper(t *testing.T) {
	pg, err := BuildGraph(edgeChunk([][3]int64{{1, 2, 1}, {2, 3, 1}}), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		s, d int64
		want bool
	}{
		{1, 3, true}, {3, 1, false}, {1, 1, true}, {99, 1, false}, {1, 99, false},
	}
	for _, c := range cases {
		got, err := pg.Reachability(types.NewInt(c.s), types.NewInt(c.d))
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("reach(%d,%d) = %v, want %v", c.s, c.d, got, c.want)
		}
	}
}

// matchHelper runs a GraphMatch over an input chunk of (x, y) pairs.
func matchHelper(t *testing.T, edges *storage.Chunk, pairs [][2]int64, specs []plan.CheapestSpec) *storage.Chunk {
	t.Helper()
	pg, err := BuildGraph(edges, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := storage.NewChunk(storage.Schema{
		{Name: "x", Kind: types.KindInt},
		{Name: "y", Kind: types.KindInt},
	})
	for _, p := range pairs {
		in.AppendRow([]types.Value{types.NewInt(p[0]), types.NewInt(p[1])})
	}
	sch := append(storage.Schema{}, in.Schema...)
	for _, sp := range specs {
		sch = append(sch, storage.ColMeta{Name: sp.CostName, Kind: sp.CostKind})
		if sp.WantPath {
			sch = append(sch, storage.ColMeta{Name: sp.PathName, Kind: types.KindPath})
		}
	}
	gm := &plan.GraphMatch{
		X:      &expr.ColRef{Idx: 0, K: types.KindInt},
		Y:      &expr.ColRef{Idx: 1, K: types.KindInt},
		SrcIdx: 0, DstIdx: 1,
		Specs: specs,
		Sch:   sch,
	}
	out, err := pg.Match(gm, in, in.Cols[0], in.Cols[1], &expr.Context{})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestMatchFiltersAndCosts(t *testing.T) {
	edges := edgeChunk([][3]int64{{1, 2, 5}, {2, 3, 7}, {1, 3, 20}})
	out := matchHelper(t, edges, [][2]int64{{1, 3}, {3, 1}, {2, 2}},
		[]plan.CheapestSpec{{
			Weight:   &expr.ColRef{Idx: 2, K: types.KindInt},
			CostKind: types.KindInt, CostName: "cost",
		}})
	// (1,3) reachable cost 12 via 2; (3,1) unreachable; (2,2) cost 0.
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d\n%s", out.NumRows(), out)
	}
	if out.Cols[2].Get(0).I != 12 || out.Cols[2].Get(1).I != 0 {
		t.Fatalf("costs = %v, %v", out.Cols[2].Get(0), out.Cols[2].Get(1))
	}
}

func TestMatchPathContents(t *testing.T) {
	edges := edgeChunk([][3]int64{{1, 2, 5}, {2, 3, 7}, {1, 3, 20}})
	out := matchHelper(t, edges, [][2]int64{{1, 3}},
		[]plan.CheapestSpec{{
			Weight:   &expr.ColRef{Idx: 2, K: types.KindInt},
			CostKind: types.KindInt, CostName: "cost",
			WantPath: true, PathName: "path",
		}})
	p := out.Cols[3].Get(0).P
	if p.Len() != 2 {
		t.Fatalf("path len = %d, want 2: %v", p.Len(), p)
	}
	// Nested table columns mirror the edge table (§2).
	if len(p.Cols) != 3 || p.Cols[0] != "s" || p.Cols[2] != "w" {
		t.Fatalf("path cols = %v", p.Cols)
	}
	if p.Rows[0][0].I != 1 || p.Rows[0][1].I != 2 || p.Rows[1][1].I != 3 {
		t.Fatalf("path rows = %v", p.Rows)
	}
	// Weights of the path rows sum to the cost.
	if p.Rows[0][2].I+p.Rows[1][2].I != out.Cols[2].Get(0).I {
		t.Fatal("path weights do not sum to the cost")
	}
}

func TestMatchFloatWeights(t *testing.T) {
	c := storage.NewChunk(storage.Schema{
		{Name: "s", Kind: types.KindInt},
		{Name: "d", Kind: types.KindInt},
		{Name: "w", Kind: types.KindFloat},
	})
	c.AppendRow([]types.Value{types.NewInt(1), types.NewInt(2), types.NewFloat(0.5)})
	c.AppendRow([]types.Value{types.NewInt(2), types.NewInt(3), types.NewFloat(0.25)})
	out := matchHelper(t, c, [][2]int64{{1, 3}},
		[]plan.CheapestSpec{{
			Weight:   &expr.ColRef{Idx: 2, K: types.KindFloat},
			CostKind: types.KindFloat, CostName: "cost",
		}})
	if got := out.Cols[2].Get(0).F; got != 0.75 {
		t.Fatalf("float cost = %v, want 0.75", got)
	}
}

func TestMatchRejectsNonPositiveWeights(t *testing.T) {
	edges := edgeChunk([][3]int64{{1, 2, 0}})
	pg, err := BuildGraph(edges, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := storage.NewChunk(storage.Schema{
		{Name: "x", Kind: types.KindInt}, {Name: "y", Kind: types.KindInt},
	})
	in.AppendRow([]types.Value{types.NewInt(1), types.NewInt(2)})
	gm := &plan.GraphMatch{
		X: &expr.ColRef{Idx: 0, K: types.KindInt}, Y: &expr.ColRef{Idx: 1, K: types.KindInt},
		SrcIdx: 0, DstIdx: 1,
		Specs: []plan.CheapestSpec{{
			Weight:   &expr.ColRef{Idx: 2, K: types.KindInt},
			CostKind: types.KindInt, CostName: "cost",
		}},
		Sch: append(append(storage.Schema{}, in.Schema...), storage.ColMeta{Name: "cost", Kind: types.KindInt}),
	}
	if _, err := pg.Match(gm, in, in.Cols[0], in.Cols[1], &expr.Context{}); err == nil ||
		!strings.Contains(err.Error(), "positive") {
		t.Fatalf("expected positivity error, got %v", err)
	}
}

func TestMatchNullKeysFilteredOut(t *testing.T) {
	edges := edgeChunk([][3]int64{{1, 2, 1}})
	pg, err := BuildGraph(edges, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := storage.NewChunk(storage.Schema{
		{Name: "x", Kind: types.KindInt}, {Name: "y", Kind: types.KindInt},
	})
	in.AppendRow([]types.Value{types.NewNull(types.KindInt), types.NewInt(2)})
	in.AppendRow([]types.Value{types.NewInt(1), types.NewNull(types.KindInt)})
	in.AppendRow([]types.Value{types.NewInt(1), types.NewInt(2)})
	gm := &plan.GraphMatch{
		X: &expr.ColRef{Idx: 0, K: types.KindInt}, Y: &expr.ColRef{Idx: 1, K: types.KindInt},
		SrcIdx: 0, DstIdx: 1, Sch: in.Schema,
	}
	out, err := pg.Match(gm, in, in.Cols[0], in.Cols[1], &expr.Context{})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1 (NULL keys fail the predicate)", out.NumRows())
	}
}

func TestStringKeyedGraph(t *testing.T) {
	c := storage.NewChunk(storage.Schema{
		{Name: "s", Kind: types.KindString},
		{Name: "d", Kind: types.KindString},
	})
	c.AppendRow([]types.Value{types.NewString("a"), types.NewString("b")})
	c.AppendRow([]types.Value{types.NewString("b"), types.NewString("c")})
	pg, err := BuildGraph(c, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := pg.Reachability(types.NewString("a"), types.NewString("c"))
	if err != nil || !ok {
		t.Fatalf("a->c: %v %v", ok, err)
	}
	ok, _ = pg.Reachability(types.NewString("c"), types.NewString("a"))
	if ok {
		t.Fatal("c must not reach a")
	}
}
