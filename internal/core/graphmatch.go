// Package core implements the paper's primary contribution at the
// physical level: the execution of the graph select / graph join
// operator (GraphMatch). Following §3.1-§3.3, it materializes the edge
// table, dictionary-encodes all vertex keys into the dense domain H,
// builds a CSR representation, invokes the shortest-path runtime for
// the batch of ⟨source, destination⟩ pairs, and materializes the
// result set back, appending CHEAPEST SUM cost and nested-table path
// columns.
package core

import (
	"context"
	"fmt"

	"graphsql/internal/expr"
	"graphsql/internal/graph"
	"graphsql/internal/par"
	"graphsql/internal/plan"
	"graphsql/internal/storage"
	"graphsql/internal/trace"
	"graphsql/internal/types"
)

// PreparedGraph is a reusable compiled graph: the vertex dictionary,
// the CSR and the (compacted) edge chunk it references. Building it is
// the dominant cost of a shortest-path query (§4); caching it across
// queries is the 'graph index' of the paper's future work (§6),
// exposed through the facade's BuildGraphIndex.
type PreparedGraph struct {
	// Dict maps vertex keys to H = {0..N-1}.
	Dict *graph.Dict
	// CSR is the adjacency structure.
	CSR *graph.CSR
	// Edges is the materialized edge chunk the CSR indexes; rows with
	// NULL endpoints were removed.
	Edges *storage.Chunk
	// SrcIdx and DstIdx locate the key columns inside Edges.
	SrcIdx, DstIdx int
	// KeyKind is the shared type of the vertex keys.
	KeyKind types.Kind
	// Parallelism is the worker budget for solving over this graph
	// (and for rebuilding it); <= 0 means one worker per CPU.
	Parallelism int
	// edgesOwned reports whether Edges is a private copy (true after
	// NULL compaction or the first dynamic-index append) rather than
	// an alias of the base table columns.
	edgesOwned bool
}

// stringKeyed reports whether vertex keys use the string key space.
func stringKeyed(k types.Kind) bool { return k == types.KindString }

// BuildGraph compiles an edge chunk into a PreparedGraph with the
// default parallelism (one worker per CPU, size-gated). The source and
// destination columns must share one comparable scalar kind.
func BuildGraph(edges *storage.Chunk, srcIdx, dstIdx int) (*PreparedGraph, error) {
	return BuildGraphP(edges, srcIdx, dstIdx, 0)
}

// BuildGraphP is BuildGraph with an explicit parallelism: dictionary
// encoding and CSR construction run chunked over up to that many
// workers (<= 0 means one per CPU), and solvers over the resulting
// graph inherit the same budget. The graph is bit-identical to a
// sequential build at any setting.
func BuildGraphP(edges *storage.Chunk, srcIdx, dstIdx, parallelism int) (*PreparedGraph, error) {
	//gsqlvet:allow ctxprop non-ctx compat wrapper; request paths use BuildGraphCtx
	return BuildGraphCtx(context.Background(), edges, srcIdx, dstIdx, parallelism)
}

// BuildGraphCtx is BuildGraphP with a cancellation context threaded
// through the dictionary-encode and CSR chunk loops: a cancel landing
// during ad-hoc graph construction aborts the build within a few
// thousand rows instead of finishing it. A nil ctx never cancels.
func BuildGraphCtx(ctx context.Context, edges *storage.Chunk, srcIdx, dstIdx, parallelism int) (*PreparedGraph, error) {
	if srcIdx < 0 || srcIdx >= len(edges.Cols) || dstIdx < 0 || dstIdx >= len(edges.Cols) {
		return nil, fmt.Errorf("graph build: edge column index out of range")
	}
	sc, dc := edges.Cols[srcIdx], edges.Cols[dstIdx]
	if sc.Kind != dc.Kind {
		return nil, fmt.Errorf("graph build: source kind %v differs from destination kind %v", sc.Kind, dc.Kind)
	}
	if sc.Kind == types.KindPath {
		return nil, fmt.Errorf("graph build: nested tables cannot be vertex keys")
	}
	// Rows with NULL endpoints do not define edges; compact them away
	// so CSR positions align with chunk rows.
	owned := false
	if sc.HasNulls() || dc.HasNulls() {
		keep := make([]int, 0, edges.NumRows())
		for i := 0; i < edges.NumRows(); i++ {
			if !sc.IsNull(i) && !dc.IsNull(i) {
				keep = append(keep, i)
			}
		}
		edges = edges.Gather(keep)
		sc, dc = edges.Cols[srcIdx], edges.Cols[dstIdx]
		owned = true
	}
	m := edges.NumRows()
	var dict *graph.Dict
	srcIDs := make([]graph.VertexID, m)
	dstIDs := make([]graph.VertexID, m)
	ids := [][]graph.VertexID{srcIDs, dstIDs}
	var err error
	if stringKeyed(sc.Kind) {
		dict = graph.NewStringDict(m)
		err = dict.EncodeColumnsStringCtx(ctx, [][]string{sc.Strs, dc.Strs}, ids, parallelism)
	} else {
		dict = graph.NewIntDict(m)
		err = dict.EncodeColumnsIntCtx(ctx, [][]int64{sc.Ints, dc.Ints}, ids, parallelism)
	}
	if err != nil {
		return nil, err
	}
	csr, err := graph.BuildCSRParallelCtx(ctx, dict.Len(), srcIDs, dstIDs, parallelism)
	if err != nil {
		return nil, err
	}
	return &PreparedGraph{
		Dict: dict, CSR: csr, Edges: edges,
		SrcIdx: srcIdx, DstIdx: dstIdx, KeyKind: sc.Kind,
		Parallelism: parallelism,
		edgesOwned:  owned,
	}, nil
}

// NumVertices returns |V|.
func (pg *PreparedGraph) NumVertices() int { return pg.Dict.Len() }

// NumEdges returns |E| (after NULL compaction).
func (pg *PreparedGraph) NumEdges() int { return pg.CSR.NumEdges() }

// encodeColumn maps a column of vertex keys onto dense ids; values
// that are NULL or not vertices map to NoVertex (they fail the
// reachability predicate, §3.1's "initial filtering").
func (pg *PreparedGraph) encodeColumn(c *storage.Column) []graph.VertexID {
	n := c.Len()
	out := make([]graph.VertexID, n)
	if stringKeyed(pg.KeyKind) {
		for i := 0; i < n; i++ {
			if c.IsNull(i) {
				out[i] = graph.NoVertex
				continue
			}
			out[i] = pg.Dict.LookupString(c.Strs[i])
		}
		return out
	}
	for i := 0; i < n; i++ {
		if c.IsNull(i) {
			out[i] = graph.NoVertex
			continue
		}
		out[i] = pg.Dict.LookupInt(c.Ints[i])
	}
	return out
}

// Match executes a GraphMatch over a prepared graph: it filters the
// input rows by the reachability predicate and appends one cost (and
// optional path) column per CheapestSpec. X and Y are the evaluated
// key columns of the input chunk.
func (pg *PreparedGraph) Match(gm *plan.GraphMatch, input *storage.Chunk, xCol, yCol *storage.Column, ctx *expr.Context) (*storage.Chunk, error) {
	//gsqlvet:allow ctxprop non-ctx compat wrapper; request paths use MatchCtx
	return pg.MatchCtx(context.Background(), gm, input, xCol, yCol, ctx)
}

// MatchCtx is Match with a cancellation context, checked at the
// solver's source-group boundaries and before output materialization.
func (pg *PreparedGraph) MatchCtx(stdctx context.Context, gm *plan.GraphMatch, input *storage.Chunk, xCol, yCol *storage.Column, ctx *expr.Context) (*storage.Chunk, error) {
	return pg.match(stdctx, gm, input, xCol, yCol, ctx, nil)
}

// match is MatchCtx with an optional delta of appended edges (dynamic
// graph index, §6).
func (pg *PreparedGraph) match(stdctx context.Context, gm *plan.GraphMatch, input *storage.Chunk, xCol, yCol *storage.Column, ctx *expr.Context, delta *graph.Delta) (*storage.Chunk, error) {
	srcs := pg.encodeColumn(xCol)
	dsts := pg.encodeColumn(yCol)

	// Materialize the weights of each CHEAPEST SUM over the edge chunk
	// (§2: "its result is computed before executing CHEAPEST SUM").
	specs := make([]graph.Spec, len(gm.Specs))
	for k := range gm.Specs {
		sp := &gm.Specs[k]
		gs := graph.Spec{
			NeedPath:        sp.WantPath,
			Float:           sp.CostKind == types.KindFloat,
			ForceBinaryHeap: sp.ForceBinaryHeap,
		}
		if cv, ok := expr.IsConst(sp.Weight, ctx); ok && !cv.Null {
			gs.Unit = true
			if gs.Float {
				gs.UnitF = cv.AsFloat()
			} else {
				gs.UnitI = cv.I
			}
		} else {
			wc, err := sp.Weight.Eval(ctx, pg.Edges)
			if err != nil {
				return nil, err
			}
			if wc.HasNulls() {
				return nil, fmt.Errorf("CHEAPEST SUM: weight expression %s produced NULL", sp.Weight)
			}
			if gs.Float {
				if wc.Kind == types.KindFloat {
					gs.WeightsF = wc.Floats
				} else {
					fs := make([]float64, wc.Len())
					for i := range fs {
						fs[i] = float64(wc.Ints[i])
					}
					gs.WeightsF = fs
				}
			} else {
				gs.WeightsI = wc.Ints
			}
		}
		if err := graph.ValidateWeights(&gs); err != nil {
			return nil, err
		}
		specs[k] = gs
	}

	solver := graph.NewSolverWithDelta(pg.CSR, delta)
	solver.Parallelism = pg.Parallelism
	solver.Ctx = stdctx
	if stdctx != nil {
		// A traced query carries its trace (and the GraphMatch span) in
		// the context; report each BFS level's frontier size into it.
		if tr, span, ok := trace.FromContext(stdctx); ok {
			solver.OnLevel = func(level int64, size int) {
				tr.AddLevel(span, level, size)
			}
		}
	}
	sol, err := solver.Solve(srcs, dsts, specs)
	if err != nil {
		return nil, err
	}
	if stdctx != nil {
		if err := stdctx.Err(); err != nil {
			return nil, err
		}
	}

	// Materialize the surviving rows plus the generated columns. The
	// output phase (row gather, cost columns, nested-table paths) is
	// partitioned over the solver's worker budget: every worker fills a
	// disjoint slice range, so the result is bit-identical to the
	// sequential loop at any worker count.
	keep := make([]int, 0, len(sol.Reached))
	for i, r := range sol.Reached {
		if r {
			keep = append(keep, i)
		}
	}
	workers := 1
	if len(keep) >= minParallelOutputRows {
		workers = par.Workers(pg.Parallelism)
	}
	out := input.GatherP(keep, workers)
	out.Schema = gm.Sch[:len(input.Schema)]
	for k := range gm.Specs {
		sp := &gm.Specs[k]
		var costCol *storage.Column
		if sp.CostKind == types.KindFloat {
			fs := make([]float64, len(keep))
			par.Ranges(workers, len(keep), func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					fs[i] = sol.CostF[k][keep[i]]
				}
			})
			costCol = storage.ColumnFromFloats(fs)
		} else {
			is := make([]int64, len(keep))
			par.Ranges(workers, len(keep), func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					is[i] = sol.CostI[k][keep[i]]
				}
			})
			costCol = storage.ColumnFromInts(sp.CostKind, is)
		}
		out.Cols = append(out.Cols, costCol)
		if sp.WantPath {
			names, kinds := pg.pathSchema()
			ps := make([]*types.Path, len(keep))
			// Paths vary wildly in length; steal items instead of
			// splitting ranges so one long-path region cannot
			// serialize the phase.
			par.Indexed(workers, len(keep), func(_, i int) {
				ps[i] = pg.buildPath(names, kinds, sol.Paths[k][keep[i]])
			})
			out.Cols = append(out.Cols, storage.ColumnFromPaths(ps))
		}
	}
	out.Schema = gm.Sch
	return out, nil
}

// minParallelOutputRows gates the parallel output phase of GraphMatch:
// below it, materialization stays on the calling goroutine. A variable
// (not a const) so tests can lower it to force the parallel path on
// small corpora; see SetMinParallelOutputRows.
var minParallelOutputRows = 1 << 12

// SetMinParallelOutputRows overrides the parallel-materialization gate
// and returns the previous value. Intended for tests and benchmarks;
// not safe to call concurrently with query execution.
func SetMinParallelOutputRows(n int) int {
	prev := minParallelOutputRows
	minParallelOutputRows = n
	return prev
}

// pathSchema derives the nested-table column names/kinds from the edge
// chunk (§2: "the attributes enclosed in the nested table ... are the
// same as the attributes of the EDGE table expression").
func (pg *PreparedGraph) pathSchema() ([]string, []types.Kind) {
	names := make([]string, len(pg.Edges.Schema))
	kinds := make([]types.Kind, len(pg.Edges.Schema))
	for i, m := range pg.Edges.Schema {
		names[i] = m.Name
		kinds[i] = m.Kind
	}
	return names, kinds
}

// buildPath materializes a nested-table value from edge-row references.
func (pg *PreparedGraph) buildPath(names []string, kinds []types.Kind, rows []int32) *types.Path {
	p := &types.Path{Cols: names, Kinds: kinds}
	if len(rows) == 0 {
		return p
	}
	p.Rows = make([][]types.Value, len(rows))
	for i, r := range rows {
		p.Rows[i] = pg.Edges.Row(int(r))
	}
	return p
}

// Reachability answers plain reachability for one pair of keys over a
// prepared graph; it is used by the facade's convenience API and the
// baseline comparisons.
func (pg *PreparedGraph) Reachability(srcKey, dstKey types.Value) (bool, error) {
	sc := storage.NewColumn(pg.KeyKind, 1)
	sc.Append(srcKey)
	dc := storage.NewColumn(pg.KeyKind, 1)
	dc.Append(dstKey)
	srcs := pg.encodeColumn(sc)
	dsts := pg.encodeColumn(dc)
	solver := graph.NewSolver(pg.CSR)
	sol, err := solver.Solve(srcs, dsts, nil)
	if err != nil {
		return false, err
	}
	return sol.Reached[0], nil
}
