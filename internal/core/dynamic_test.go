package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// dynTable builds a table-like chunk whose columns can grow (shared
// *Column objects, as base tables behave).
func dynTable(edges [][3]int64) *storage.Chunk {
	return edgeChunk(edges)
}

func appendEdge(c *storage.Chunk, s, d, w int64) {
	c.Cols[0].AppendInt(s)
	c.Cols[1].AppendInt(d)
	c.Cols[2].AppendInt(w)
}

func TestDynamicGraphAbsorbsAppends(t *testing.T) {
	tbl := dynTable([][3]int64{{1, 2, 1}, {2, 3, 1}})
	dg, err := NewDynamicGraph(tbl, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	ok, _ := dg.Reachability(types.NewInt(3), types.NewInt(1))
	if ok {
		t.Fatal("3 must not reach 1 before the append")
	}
	// Close the cycle and introduce a brand-new vertex 4.
	appendEdge(tbl, 3, 1, 1)
	appendEdge(tbl, 3, 4, 1)
	if _, err := dg.Refresh(tbl); err != nil {
		t.Fatal(err)
	}
	if dg.DeltaEdges() != 2 {
		t.Fatalf("delta edges = %d, want 2", dg.DeltaEdges())
	}
	ok, _ = dg.Reachability(types.NewInt(3), types.NewInt(1))
	if !ok {
		t.Fatal("3 must reach 1 through the delta edge")
	}
	ok, _ = dg.Reachability(types.NewInt(1), types.NewInt(4))
	if !ok {
		t.Fatal("1 must reach the new vertex 4")
	}
}

func TestDynamicGraphRefreshIsIdempotent(t *testing.T) {
	tbl := dynTable([][3]int64{{1, 2, 1}})
	dg, err := NewDynamicGraph(tbl, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := dg.Refresh(tbl); err != nil {
			t.Fatal(err)
		}
	}
	if dg.DeltaEdges() != 0 {
		t.Fatalf("no-op refreshes created %d delta edges", dg.DeltaEdges())
	}
	appendEdge(tbl, 2, 3, 1)
	if _, err := dg.Refresh(tbl); err != nil {
		t.Fatal(err)
	}
	if _, err := dg.Refresh(tbl); err != nil {
		t.Fatal(err)
	}
	if dg.DeltaEdges() != 1 {
		t.Fatalf("delta edges = %d, want 1 (double refresh must not duplicate)", dg.DeltaEdges())
	}
}

func TestDynamicGraphRebuildOnLargeDelta(t *testing.T) {
	tbl := dynTable([][3]int64{{0, 1, 1}})
	dg, err := NewDynamicGraph(tbl, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	dg.RebuildFraction = 0.25
	// Push well past the 64-edge floor of the rebuild threshold.
	for i := int64(1); i <= 100; i++ {
		appendEdge(tbl, i, i+1, 1)
	}
	rebuilt, err := dg.Refresh(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !rebuilt {
		t.Fatal("a 100-edge delta over a 1-edge snapshot must rebuild")
	}
	if dg.DeltaEdges() != 0 {
		t.Fatal("rebuild must clear the delta")
	}
	if dg.Prepared().NumEdges() != 101 {
		t.Fatalf("snapshot edges = %d, want 101", dg.Prepared().NumEdges())
	}
	ok, _ := dg.Reachability(types.NewInt(0), types.NewInt(101))
	if !ok {
		t.Fatal("0 must reach 101 after the rebuild")
	}
}

func TestDynamicGraphRejectsShrunkTable(t *testing.T) {
	tbl := dynTable([][3]int64{{1, 2, 1}, {2, 3, 1}})
	dg, err := NewDynamicGraph(tbl, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	smaller := dynTable([][3]int64{{1, 2, 1}})
	if _, err := dg.Refresh(smaller); err == nil {
		t.Fatal("a shrunk table must violate the append-only contract")
	}
}

func TestDynamicGraphDoesNotCorruptBaseTable(t *testing.T) {
	tbl := dynTable([][3]int64{{1, 2, 1}})
	dg, err := NewDynamicGraph(tbl, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	appendEdge(tbl, 2, 3, 1)
	if _, err := dg.Refresh(tbl); err != nil {
		t.Fatal(err)
	}
	// The index's private edge chunk grows; the base table must not.
	if tbl.NumRows() != 2 {
		t.Fatalf("base table rows = %d, want 2 (index append leaked!)", tbl.NumRows())
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDynamicEqualsRebuilt inserts random edge batches and
// checks, after every refresh, that delta-based reachability agrees
// with a from-scratch build of the whole table.
func TestPropertyDynamicEqualsRebuilt(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		tbl := dynTable(nil)
		// Initial edges.
		for i := 0; i < 1+r.Intn(8); i++ {
			appendEdge(tbl, int64(r.Intn(n)), int64(r.Intn(n)), 1)
		}
		dg, err := NewDynamicGraph(tbl, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 4; round++ {
			for i := 0; i < r.Intn(6); i++ {
				appendEdge(tbl, int64(r.Intn(n)), int64(r.Intn(n)), 1)
			}
			if _, err := dg.Refresh(tbl); err != nil {
				t.Fatal(err)
			}
			fresh, err := BuildGraph(tbl, 0, 1)
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < n; s++ {
				for d := 0; d < n; d++ {
					want, err := fresh.Reachability(types.NewInt(int64(s)), types.NewInt(int64(d)))
					if err != nil {
						t.Fatal(err)
					}
					got, err := dg.Reachability(types.NewInt(int64(s)), types.NewInt(int64(d)))
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Logf("seed %d round %d: reach(%d,%d) dynamic=%v fresh=%v",
							seed, round, s, d, got, want)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
