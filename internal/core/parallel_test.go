package core

import (
	"math/rand"
	"reflect"
	"testing"

	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// TestBuildGraphPEquivalence builds a graph large enough to cross the
// runtime's parallel thresholds and checks the parallel build is
// bit-identical to a sequential one: same dictionary size, same CSR
// layout.
func TestBuildGraphPEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const m = 70000
	c := storage.NewChunk(storage.Schema{
		{Name: "s", Kind: types.KindInt},
		{Name: "d", Kind: types.KindInt},
	})
	sc := storage.NewColumn(types.KindInt, m)
	dc := storage.NewColumn(types.KindInt, m)
	for i := 0; i < m; i++ {
		sc.AppendInt(int64(rng.Intn(9000)))
		dc.AppendInt(int64(rng.Intn(9000)))
	}
	c.Cols = []*storage.Column{sc, dc}

	seq, err := BuildGraphP(c, 0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildGraphP(c, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq.NumVertices() != par.NumVertices() {
		t.Fatalf("|V| %d != %d", par.NumVertices(), seq.NumVertices())
	}
	if !reflect.DeepEqual(seq.CSR, par.CSR) {
		t.Fatal("parallel CSR differs from sequential")
	}
	// The dictionaries must agree on every key -> id mapping, not just
	// the size.
	for i := 0; i < m; i++ {
		k := sc.Ints[i]
		if seq.Dict.LookupInt(k) != par.Dict.LookupInt(k) {
			t.Fatalf("key %d: id %d != %d", k, par.Dict.LookupInt(k), seq.Dict.LookupInt(k))
		}
	}
}
