package core

import (
	"context"
	"fmt"
	"sync"

	"graphsql/internal/expr"
	"graphsql/internal/graph"
	"graphsql/internal/plan"
	"graphsql/internal/storage"
	"graphsql/internal/types"
)

// DynamicGraph is an updatable graph index: a CSR snapshot plus a
// delta of edges appended since the snapshot. It answers the open
// problem of the paper's §6 — graph indices must be "amenable to the
// updates on the underlying tables" even though the CSR itself is
// immutable. Appended rows are absorbed in O(new edges); once the
// delta outgrows RebuildFraction of the snapshot the whole index is
// rebuilt.
//
// Restrictions: the underlying table must be append-only between
// refreshes (DELETE and DROP invalidate the index entirely, handled by
// the engine).
type DynamicGraph struct {
	// mu makes the index safe for concurrent readers with occasional
	// refreshes: Match and the accessors take the read lock, Refresh
	// upgrades to the write lock only when there are rows to absorb.
	// The caller must still serialize refreshes against table writes
	// (the facade's RWMutex does).
	mu sync.RWMutex
	pg *PreparedGraph
	// delta holds edges of rows appended after the snapshot; nil when
	// the index is exactly the snapshot.
	delta *graph.Delta
	// appliedRows counts the source-table rows already reflected
	// (snapshot + delta).
	appliedRows int
	// RebuildFraction triggers a snapshot rebuild once
	// delta edges > RebuildFraction × snapshot edges. 0 means the
	// default of 0.25.
	RebuildFraction float64
}

// NewDynamicGraph builds the initial snapshot from the table chunk
// with the default parallelism.
func NewDynamicGraph(edges *storage.Chunk, srcIdx, dstIdx int) (*DynamicGraph, error) {
	return NewDynamicGraphP(edges, srcIdx, dstIdx, 0)
}

// NewDynamicGraphP is NewDynamicGraph with an explicit parallelism,
// inherited by snapshot rebuilds and solvers (<= 0 means one worker
// per CPU).
func NewDynamicGraphP(edges *storage.Chunk, srcIdx, dstIdx, parallelism int) (*DynamicGraph, error) {
	pg, err := BuildGraphP(edges, srcIdx, dstIdx, parallelism)
	if err != nil {
		return nil, err
	}
	return &DynamicGraph{pg: pg, appliedRows: edges.NumRows()}, nil
}

// Prepared exposes the current snapshot (plus delta via Solver()).
func (dg *DynamicGraph) Prepared() *PreparedGraph {
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	return dg.pg
}

// AppliedRows reports how many source-table rows the index reflects.
func (dg *DynamicGraph) AppliedRows() int {
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	return dg.appliedRows
}

// DeltaEdges reports the number of edges currently in the delta.
func (dg *DynamicGraph) DeltaEdges() int {
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	return dg.deltaEdgesLocked()
}

// deltaEdgesLocked is DeltaEdges for callers already holding mu.
func (dg *DynamicGraph) deltaEdgesLocked() int {
	if dg.delta == nil {
		return 0
	}
	return dg.delta.Edges
}

// rebuildThreshold returns the delta size that triggers a rebuild.
func (dg *DynamicGraph) rebuildThreshold() int {
	f := dg.RebuildFraction
	if f <= 0 {
		f = 0.25
	}
	t := int(f * float64(dg.pg.NumEdges()))
	if t < 64 {
		t = 64 // tiny graphs: don't rebuild on every insert
	}
	return t
}

// Refresh absorbs rows appended to the table chunk since the last
// refresh. It must be called with the full current chunk of the same
// table the index was built on; rows before appliedRows are assumed
// unchanged (append-only contract). Returns whether a full rebuild
// happened.
func (dg *DynamicGraph) Refresh(current *storage.Chunk) (rebuilt bool, err error) {
	//gsqlvet:allow ctxprop non-ctx compat wrapper; request paths use RefreshCtx
	return dg.RefreshCtx(context.Background(), current)
}

// RefreshCtx is Refresh with a cancellation context: a snapshot rebuild
// triggered by delta growth runs the full graph construction, and the
// ctx is threaded through its dictionary-encode and CSR chunk loops so
// a canceled query does not pin the write lock for the whole rebuild.
// On cancellation the index is left unchanged.
func (dg *DynamicGraph) RefreshCtx(ctx context.Context, current *storage.Chunk) (rebuilt bool, err error) {
	n := current.NumRows()
	// Fast path: nothing to absorb. Taken under the read lock so
	// concurrent queries over an unchanged table never serialize.
	dg.mu.RLock()
	upToDate := n == dg.appliedRows
	dg.mu.RUnlock()
	if upToDate {
		return false, nil
	}
	dg.mu.Lock()
	defer dg.mu.Unlock()
	switch {
	case n < dg.appliedRows:
		return false, fmt.Errorf("graph index: table shrank from %d to %d rows (append-only contract violated)", dg.appliedRows, n)
	case n == dg.appliedRows:
		return false, nil
	}
	newEdges := n - dg.appliedRows
	if dg.deltaEdgesLocked()+newEdges > dg.rebuildThreshold() {
		pg, err := BuildGraphCtx(ctx, current, dg.pg.SrcIdx, dg.pg.DstIdx, dg.pg.Parallelism)
		if err != nil {
			return false, err
		}
		dg.pg = pg
		dg.delta = nil
		dg.appliedRows = n
		return true, nil
	}
	if dg.delta == nil {
		dg.delta = graph.NewDelta(dg.pg.NumVertices())
	}
	// The snapshot's Edges chunk must stay row-aligned with the CSR
	// Perm and the delta rows; append the new rows (skipping NULL
	// endpoints exactly like BuildGraph does).
	sc, dc := current.Cols[dg.pg.SrcIdx], current.Cols[dg.pg.DstIdx]
	if sc.Kind != dg.pg.KeyKind {
		return false, fmt.Errorf("graph index: key kind changed from %v to %v", dg.pg.KeyKind, sc.Kind)
	}
	// dg.appliedRows is the snapshot's table row count; when the edge
	// chunk aliases the live table columns it already "sees" the
	// appended rows, so the private copy must stop at the snapshot.
	ownEdgesChunk(dg.pg, dg.appliedRows)
	for row := dg.appliedRows; row < n; row++ {
		if sc.IsNull(row) || dc.IsNull(row) {
			continue
		}
		var s, d graph.VertexID
		if stringKeyed(dg.pg.KeyKind) {
			s = dg.pg.Dict.EncodeString(sc.Strs[row])
			d = dg.pg.Dict.EncodeString(dc.Strs[row])
		} else {
			s = dg.pg.Dict.EncodeInt(sc.Ints[row])
			d = dg.pg.Dict.EncodeInt(dc.Ints[row])
		}
		// The edge's row id inside the index's own edge chunk.
		deltaRow := int32(dg.pg.Edges.NumRows())
		for c := range current.Cols {
			dg.pg.Edges.Cols[c].Append(current.Cols[c].Get(row))
		}
		dg.delta.Add(s, d, deltaRow)
	}
	if dg.pg.Dict.Len() > dg.delta.N {
		dg.delta.N = dg.pg.Dict.Len()
	}
	dg.appliedRows = n
	return false, nil
}

// ownEdgesChunk makes the prepared graph's edge chunk privately
// writable, copying exactly the snapshot rows. BuildGraph aliases the
// table columns when no NULL compaction happened; before appending
// delta rows we must copy, or the base table would be corrupted (and
// rows appended to the table since the snapshot would be duplicated).
func ownEdgesChunk(pg *PreparedGraph, snapshotRows int) {
	if pg.edgesOwned {
		return
	}
	if snapshotRows > pg.Edges.NumRows() {
		snapshotRows = pg.Edges.NumRows()
	}
	rows := make([]int, snapshotRows)
	for i := range rows {
		rows[i] = i
	}
	pg.Edges = pg.Edges.Gather(rows)
	pg.edgesOwned = true
}

// Solver returns a solver over the snapshot plus the delta. The
// returned solver aliases the live delta, so the caller must not run
// it concurrently with Refresh (the query path uses MatchCtx, which
// holds the read lock for the whole solve, instead).
func (dg *DynamicGraph) Solver() *graph.Solver {
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	s := graph.NewSolverWithDelta(dg.pg.CSR, dg.delta)
	s.Parallelism = dg.pg.Parallelism
	return s
}

// Match runs a GraphMatch through the dynamic index (snapshot+delta).
func (dg *DynamicGraph) Match(gm *plan.GraphMatch, input *storage.Chunk, xCol, yCol *storage.Column, ctx *expr.Context) (*storage.Chunk, error) {
	//gsqlvet:allow ctxprop non-ctx compat wrapper; request paths use MatchCtx
	return dg.MatchCtx(context.Background(), gm, input, xCol, yCol, ctx)
}

// MatchCtx is Match with a cancellation context. The read lock is held
// for the duration of the solve, so a concurrent Refresh waits for
// in-flight matches instead of mutating the snapshot under them.
func (dg *DynamicGraph) MatchCtx(stdctx context.Context, gm *plan.GraphMatch, input *storage.Chunk, xCol, yCol *storage.Column, ctx *expr.Context) (*storage.Chunk, error) {
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	return dg.pg.match(stdctx, gm, input, xCol, yCol, ctx, dg.delta)
}

// Reachability answers one pair over the current snapshot+delta. The
// read lock is held for the whole solve: the dictionary lookups and
// the delta adjacency are mutated in place by Refresh.
func (dg *DynamicGraph) Reachability(srcKey, dstKey types.Value) (bool, error) {
	dg.mu.RLock()
	defer dg.mu.RUnlock()
	pg := dg.pg
	solver := graph.NewSolverWithDelta(pg.CSR, dg.delta)
	solver.Parallelism = pg.Parallelism
	sc := storage.NewColumn(pg.KeyKind, 1)
	sc.Append(srcKey)
	dc := storage.NewColumn(pg.KeyKind, 1)
	dc.Append(dstKey)
	srcs := pg.encodeColumn(sc)
	dsts := pg.encodeColumn(dc)
	sol, err := solver.Solve(srcs, dsts, nil)
	if err != nil {
		return false, err
	}
	return sol.Reached[0], nil
}
