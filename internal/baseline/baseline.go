// Package baseline implements the three customary ways of answering
// shortest-path queries in standard SQL that the paper's introduction
// motivates against (§1): recursive expansion (the evaluation strategy
// of a recursive CTE), persistent stored modules (procedural code
// issuing row-at-a-time queries), and an explicit chain of self-joins
// bounded by N. They exist to reproduce the motivation experiment
// (E4): the native REACHES operator wins by orders of magnitude.
//
// All three compute the unweighted shortest-path distance between two
// person ids over an edge table edge(src, dst), returning -1 when the
// destination is unreachable.
package baseline

import (
	"fmt"
	"strings"

	"graphsql/internal/engine"
	"graphsql/internal/types"
)

// RecursiveCTE emulates the semi-naive evaluation of
//
//	WITH RECURSIVE reach(id, d) AS (VALUES (src, 0) UNION ...)
//
// by issuing one set-oriented join per BFS level through the engine,
// exactly what a recursive CTE runtime does. maxDepth bounds the
// number of iterations (<= 0 means no bound).
func RecursiveCTE(e *engine.Engine, edgeTable, srcCol, dstCol string, src, dst int64, maxDepth int) (int64, error) {
	if src == dst {
		// Mirror REACHES semantics: a vertex trivially reaches itself
		// when it is a vertex of the graph.
		ok, err := isVertex(e, edgeTable, srcCol, dstCol, src)
		if err != nil {
			return -1, err
		}
		if ok {
			return 0, nil
		}
		return -1, nil
	}
	// visited holds all ids seen so far; frontier the last level.
	_ = e.Catalog().DropTable("__bl_visited")
	_ = e.Catalog().DropTable("__bl_frontier")
	if _, err := e.Query(`CREATE TABLE __bl_visited (id BIGINT)`); err != nil {
		return -1, err
	}
	if _, err := e.Query(`CREATE TABLE __bl_frontier (id BIGINT)`); err != nil {
		return -1, err
	}
	defer func() {
		_ = e.Catalog().DropTable("__bl_visited")
		_ = e.Catalog().DropTable("__bl_frontier")
	}()
	if _, err := e.Query(`INSERT INTO __bl_visited VALUES (?)`, types.NewInt(src)); err != nil {
		return -1, err
	}
	if _, err := e.Query(`INSERT INTO __bl_frontier VALUES (?)`, types.NewInt(src)); err != nil {
		return -1, err
	}
	// One set-oriented expansion per BFS level, the semi-naive step of
	// a recursive CTE (new = frontier ⋈ edges minus visited).
	expand := fmt.Sprintf(`
		SELECT DISTINCT e.%s AS id
		FROM __bl_frontier f JOIN %s e ON f.id = e.%s
		EXCEPT
		SELECT id FROM __bl_visited`,
		dstCol, edgeTable, srcCol)

	for depth := 1; maxDepth <= 0 || depth <= maxDepth; depth++ {
		next, err := e.Query(expand)
		if err != nil {
			return -1, err
		}
		if next.NumRows() == 0 {
			return -1, nil // fixpoint: unreachable
		}
		found := false
		col := next.Cols[0]
		for i := 0; i < next.NumRows(); i++ {
			if col.Ints[i] == dst {
				found = true
				break
			}
		}
		if found {
			return int64(depth), nil
		}
		// frontier := next; visited += next.
		if _, err := e.Query(`DELETE FROM __bl_frontier`); err != nil {
			return -1, err
		}
		ftab, _ := e.Catalog().Table("__bl_frontier")
		vtab, _ := e.Catalog().Table("__bl_visited")
		for i := 0; i < next.NumRows(); i++ {
			ftab.Cols[0].AppendInt(col.Ints[i])
			vtab.Cols[0].AppendInt(col.Ints[i])
		}
	}
	return -1, fmt.Errorf("baseline: depth bound exceeded")
}

// isVertex checks membership of id in srcCol ∪ dstCol.
func isVertex(e *engine.Engine, edgeTable, srcCol, dstCol string, id int64) (bool, error) {
	q := fmt.Sprintf(`SELECT COUNT(*) FROM %s WHERE %s = ? OR %s = ?`, edgeTable, srcCol, dstCol)
	res, err := e.Query(q, types.NewInt(id), types.NewInt(id))
	if err != nil {
		return false, err
	}
	return res.Cols[0].Ints[0] > 0, nil
}

// PSM mimics a persistent stored module: a procedural BFS that keeps
// its queue in application state and performs one point query per
// dequeued vertex — the "interpretation overhead" cost profile of §1.
func PSM(e *engine.Engine, edgeTable, srcCol, dstCol string, src, dst int64, maxDepth int) (int64, error) {
	if src == dst {
		ok, err := isVertex(e, edgeTable, srcCol, dstCol, src)
		if err != nil {
			return -1, err
		}
		if ok {
			return 0, nil
		}
		return -1, nil
	}
	neighbors := fmt.Sprintf(`SELECT %s FROM %s WHERE %s = ?`, dstCol, edgeTable, srcCol)
	type item struct {
		id int64
		d  int64
	}
	visited := map[int64]bool{src: true}
	queue := []item{{src, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if maxDepth > 0 && cur.d >= int64(maxDepth) {
			continue
		}
		res, err := e.Query(neighbors, types.NewInt(cur.id))
		if err != nil {
			return -1, err
		}
		col := res.Cols[0]
		for i := 0; i < res.NumRows(); i++ {
			n := col.Ints[i]
			if visited[n] {
				continue
			}
			if n == dst {
				return cur.d + 1, nil
			}
			visited[n] = true
			queue = append(queue, item{n, cur.d + 1})
		}
	}
	return -1, nil
}

// SelfJoinChain checks for a path of exactly k hops for k = 1..maxHops
// with a k-way self-join, the bounded-iteration folk method of §1. It
// returns the smallest k with a match, or -1 if none exists within the
// bound. Cost grows explosively with k, which is the point of the
// experiment.
func SelfJoinChain(e *engine.Engine, edgeTable, srcCol, dstCol string, src, dst int64, maxHops int) (int64, error) {
	if src == dst {
		ok, err := isVertex(e, edgeTable, srcCol, dstCol, src)
		if err != nil {
			return -1, err
		}
		if ok {
			return 0, nil
		}
		return -1, nil
	}
	for k := 1; k <= maxHops; k++ {
		var b strings.Builder
		fmt.Fprintf(&b, "SELECT COUNT(*) FROM %s e1", edgeTable)
		for i := 2; i <= k; i++ {
			fmt.Fprintf(&b, " JOIN %s e%d ON e%d.%s = e%d.%s", edgeTable, i, i-1, dstCol, i, srcCol)
		}
		fmt.Fprintf(&b, " WHERE e1.%s = ? AND e%d.%s = ?", srcCol, k, dstCol)
		res, err := e.Query(b.String(), types.NewInt(src), types.NewInt(dst))
		if err != nil {
			return -1, err
		}
		if res.Cols[0].Ints[0] > 0 {
			return int64(k), nil
		}
	}
	return -1, nil
}

// Native answers the same question with the paper's extension: one
// REACHES + CHEAPEST SUM(1) query.
func Native(e *engine.Engine, edgeTable, srcCol, dstCol string, src, dst int64) (int64, error) {
	q := fmt.Sprintf(`SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER %s EDGE (%s, %s)`,
		edgeTable, srcCol, dstCol)
	res, err := e.Query(q, types.NewInt(src), types.NewInt(dst))
	if err != nil {
		return -1, err
	}
	if res.NumRows() == 0 {
		return -1, nil
	}
	return res.Cols[0].Ints[0], nil
}
