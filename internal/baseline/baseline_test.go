package baseline

import (
	"testing"

	"graphsql/internal/engine"
	"graphsql/internal/ldbc"
)

func lineEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New()
	if _, err := e.ExecScript(`
		CREATE TABLE edges (src BIGINT, dst BIGINT);
		INSERT INTO edges VALUES
			(1, 2), (2, 3), (3, 4), (4, 5),
			(1, 5),
			(10, 11);
	`); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAllMethodsAgreeOnLineGraph(t *testing.T) {
	e := lineEngine(t)
	cases := []struct {
		s, d int64
		want int64
	}{
		{1, 5, 1},  // direct shortcut
		{1, 4, 3},  // along the line
		{2, 5, 3},  // 2-3-4-5
		{5, 1, -1}, // directed: no way back
		{1, 11, -1},
		{10, 11, 1},
		{3, 3, 0}, // self
		{1, 1, 0},
	}
	for _, c := range cases {
		native, err := Native(e, "edges", "src", "dst", c.s, c.d)
		if err != nil {
			t.Fatalf("native(%d,%d): %v", c.s, c.d, err)
		}
		if native != c.want {
			t.Errorf("native(%d,%d) = %d, want %d", c.s, c.d, native, c.want)
		}
		rec, err := RecursiveCTE(e, "edges", "src", "dst", c.s, c.d, 0)
		if err != nil {
			t.Fatalf("recursive(%d,%d): %v", c.s, c.d, err)
		}
		if rec != c.want {
			t.Errorf("recursive(%d,%d) = %d, want %d", c.s, c.d, rec, c.want)
		}
		psm, err := PSM(e, "edges", "src", "dst", c.s, c.d, 0)
		if err != nil {
			t.Fatalf("psm(%d,%d): %v", c.s, c.d, err)
		}
		if psm != c.want {
			t.Errorf("psm(%d,%d) = %d, want %d", c.s, c.d, psm, c.want)
		}
		sj, err := SelfJoinChain(e, "edges", "src", "dst", c.s, c.d, 4)
		if err != nil {
			t.Fatalf("selfjoin(%d,%d): %v", c.s, c.d, err)
		}
		if sj != c.want {
			t.Errorf("selfjoin(%d,%d) = %d, want %d", c.s, c.d, sj, c.want)
		}
	}
}

func TestSelfJoinChainRespectsBound(t *testing.T) {
	e := lineEngine(t)
	// 2 -> 5 needs 3 hops; a bound of 2 must miss it.
	got, err := SelfJoinChain(e, "edges", "src", "dst", 2, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != -1 {
		t.Fatalf("got %d, want -1 under bound 2", got)
	}
}

func TestRecursiveCTECleansUpTempTables(t *testing.T) {
	e := lineEngine(t)
	if _, err := RecursiveCTE(e, "edges", "src", "dst", 1, 4, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Catalog().Table("__bl_visited"); ok {
		t.Fatal("temp table leaked")
	}
	if _, ok := e.Catalog().Table("__bl_frontier"); ok {
		t.Fatal("temp table leaked")
	}
}

func TestSelfNonVertexIsUnreachable(t *testing.T) {
	e := lineEngine(t)
	for _, f := range []func() (int64, error){
		func() (int64, error) { return Native(e, "edges", "src", "dst", 999, 999) },
		func() (int64, error) { return RecursiveCTE(e, "edges", "src", "dst", 999, 999, 0) },
		func() (int64, error) { return PSM(e, "edges", "src", "dst", 999, 999, 0) },
		func() (int64, error) { return SelfJoinChain(e, "edges", "src", "dst", 999, 999, 3) },
	} {
		got, err := f()
		if err != nil {
			t.Fatal(err)
		}
		if got != -1 {
			t.Fatalf("non-vertex self pair = %d, want -1", got)
		}
	}
}

// TestMethodsAgreeOnGeneratedGraph cross-checks all methods on a small
// LDBC-style social graph against the native operator.
func TestMethodsAgreeOnGeneratedGraph(t *testing.T) {
	ds, err := ldbc.Generate(ldbc.Config{SF: 1, Shrink: 100, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New()
	if err := ds.Load(e.Catalog()); err != nil {
		t.Fatal(err)
	}
	src, dst := ds.RandomPairs(8, 11)
	for i := range src {
		native, err := Native(e, "friends", "src", "dst", src[i], dst[i])
		if err != nil {
			t.Fatal(err)
		}
		rec, err := RecursiveCTE(e, "friends", "src", "dst", src[i], dst[i], 0)
		if err != nil {
			t.Fatal(err)
		}
		if rec != native {
			t.Errorf("pair %d: recursive %d != native %d", i, rec, native)
		}
		psm, err := PSM(e, "friends", "src", "dst", src[i], dst[i], 0)
		if err != nil {
			t.Fatal(err)
		}
		if psm != native {
			t.Errorf("pair %d: psm %d != native %d", i, psm, native)
		}
	}
}
