// Package analysis is the stdlib-only core of gsqlvet, the engine's
// custom static-analysis suite. It mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — so the
// six invariant checkers under internal/lint read exactly like upstream
// vet passes and could be rebased onto x/tools mechanically, but it
// depends on nothing outside the standard library: the build
// environment pins its dependency set, so the framework the analyzers
// run on is vendored here in miniature instead of fetched.
//
// The driver contract is the same as vet's: an Analyzer's Run receives
// one type-checked package (syntax, *types.Package, *types.Info) and
// reports position-anchored diagnostics. Facts (cross-package analysis
// state) are intentionally unsupported — every gsqlvet invariant is
// checkable package-locally because the things it guards (context
// construction, map iteration order, span pairing, fault-point names,
// goroutine spawns, wire struct literals) are properties of the code at
// the violation site.
//
// # Suppression
//
// A diagnostic is suppressed by an explicit, justified annotation:
//
//	//gsqlvet:allow <analyzer> <reason...>
//
// placed either on the flagged line (trailing) or on the line directly
// above it. The reason is mandatory; an annotation without one is
// itself reported, so the allowlist can never decay into bare
// switch-offs. Suppression is applied by the driver (Filter), not by
// analyzers, so every analyzer gets it uniformly.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //gsqlvet:allow annotations. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph description `gsqlvet help` prints: what
	// invariant the analyzer guards and what a violation means.
	Doc string
	// Run checks one package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an Analyzer's Run.
type Pass struct {
	// Analyzer is the checker this pass runs.
	Analyzer *Analyzer
	// Fset maps token.Pos to file positions for every file in the pass.
	Fset *token.FileSet
	// Files is the package's parsed syntax (production files only; the
	// drivers do not feed _test.go files to analyzers).
	Files []*ast.File
	// Pkg is the type-checked package. Path-gated analyzers key off
	// Pkg.Path().
	Pkg *types.Package
	// TypesInfo holds the type-checker's expression types, object uses
	// and selections for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position and a message. The driver
// prefixes the reporting analyzer's name when printing.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is filled by the driver from the reporting pass.
	Analyzer string
}

// AllowDirective is the comment prefix of a suppression annotation.
const AllowDirective = "//gsqlvet:allow"

// allowSite records one parsed //gsqlvet:allow annotation.
type allowSite struct {
	analyzer string
	line     int // line the comment sits on
	pos      token.Pos
}

// Filter applies //gsqlvet:allow suppression to diags and returns the
// surviving diagnostics. Malformed annotations (missing analyzer name
// or missing reason) are appended as fresh diagnostics attributed to
// the driver, so a bare switch-off is itself a finding. files must be
// the same syntax the diagnostics were produced from.
func Filter(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	var sites []allowSite
	var out []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, AllowDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, AllowDirective)
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) == 0 {
					out = append(out, Diagnostic{
						Pos:      c.Pos(),
						Message:  "malformed gsqlvet:allow: missing analyzer name (want //gsqlvet:allow <analyzer> <reason>)",
						Analyzer: "gsqlvet",
					})
					continue
				}
				site := allowSite{analyzer: fields[0], line: pos.Line, pos: c.Pos()}
				if len(fields) < 2 {
					out = append(out, Diagnostic{
						Pos:      c.Pos(),
						Message:  fmt.Sprintf("gsqlvet:allow %s has no justification (want //gsqlvet:allow %s <reason>)", site.analyzer, site.analyzer),
						Analyzer: "gsqlvet",
					})
					// A reasonless allow still suppresses nothing.
					continue
				}
				sites = append(sites, site)
			}
		}
	}
	for _, d := range diags {
		if !suppressed(fset, sites, d) {
			out = append(out, d)
		}
	}
	return out
}

// suppressed reports whether an allow annotation covers the diagnostic:
// same analyzer, annotation on the diagnostic's line (trailing comment)
// or on the line directly above it.
func suppressed(fset *token.FileSet, sites []allowSite, d Diagnostic) bool {
	p := fset.Position(d.Pos)
	for _, s := range sites {
		if s.analyzer != d.Analyzer {
			continue
		}
		sp := fset.Position(s.pos)
		if sp.Filename != p.Filename {
			continue
		}
		if s.line == p.Line || s.line == p.Line-1 {
			return true
		}
	}
	return false
}

// InTestdata reports whether the position's file path contains a
// testdata element; drivers never report diagnostics there.
func InTestdata(fset *token.FileSet, pos token.Pos) bool {
	name := fset.Position(pos).Filename
	return strings.Contains(name, "/testdata/") || strings.HasPrefix(name, "testdata/")
}
