// Package driver runs a set of gsqlvet analyzers over type-checked
// packages and post-processes their findings: it stamps each diagnostic
// with its analyzer, applies //gsqlvet:allow suppression, drops
// anything anchored in testdata, and resolves positions into plain
// file:line:col findings. Both gsqlvet modes (standalone and
// `go vet -vettool`) and the in-process self-check test funnel through
// Run, so a finding means the same thing everywhere.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"graphsql/internal/lint/analysis"
)

// Target is the package-shaped input Run needs; the standalone loader
// and the unitchecker both produce it.
type Target struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Finding is one surviving diagnostic with its position resolved.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in vet's reporting shape.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run executes every analyzer over every target and returns the
// surviving findings sorted by position. Analyzer errors (not findings
// — internal failures) abort the run.
func Run(analyzers []*analysis.Analyzer, targets []*Target) ([]Finding, error) {
	var all []Finding
	for _, t := range targets {
		var diags []analysis.Diagnostic
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      t.Fset,
				Files:     t.Files,
				Pkg:       t.Pkg,
				TypesInfo: t.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d analysis.Diagnostic) {
				d.Analyzer = name
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", t.Pkg.Path(), a.Name, err)
			}
		}
		for _, d := range analysis.Filter(t.Fset, t.Files, diags) {
			if analysis.InTestdata(t.Fset, d.Pos) {
				continue
			}
			all = append(all, Finding{
				Pos:      t.Fset.Position(d.Pos),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		pi, pj := all[i].Pos, all[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}
