// Package lintutil holds the path gates and small go/types helpers the
// gsqlvet analyzers share. The gates are the single place the module's
// invariant boundaries are spelled out: which packages are on the
// request path (must propagate ctx), which produce results (must stay
// deterministic), and which own the worker budget.
package lintutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// ModulePath is this module's import-path prefix.
const ModulePath = "graphsql"

// RequestPathPackages are the packages every request flows through;
// code here must thread the caller's context rather than detaching a
// fresh one, or cancellation silently stops propagating.
var RequestPathPackages = []string{
	ModulePath,
	ModulePath + "/internal/engine",
	ModulePath + "/internal/exec",
	ModulePath + "/internal/graph",
	ModulePath + "/internal/server",
	ModulePath + "/internal/core",
}

// ResultPathPackages are the packages whose output feeds query results
// or the pinned wire encoding; the bit-identical-at-every-worker-count
// guarantee lives here, so iteration order and clocks must not leak
// into what they produce.
var ResultPathPackages = []string{
	ModulePath,
	ModulePath + "/internal/engine",
	ModulePath + "/internal/exec",
	ModulePath + "/internal/graph",
	ModulePath + "/internal/core",
	ModulePath + "/internal/storage",
	ModulePath + "/internal/expr",
	ModulePath + "/internal/plan",
	ModulePath + "/internal/analyze",
	ModulePath + "/internal/sql",
	ModulePath + "/internal/wire",
}

// BudgetedPackages are the packages whose concurrency must flow through
// internal/par's worker budget instead of bare goroutine spawns, so the
// admission scheduler's per-query grants stay meaningful. The daemon
// binary is included: it runs in the same process as the scheduler, and
// its accept/listener goroutines are the sanctioned allowlist cases.
var BudgetedPackages = []string{
	ModulePath,
	ModulePath + "/internal/engine",
	ModulePath + "/internal/exec",
	ModulePath + "/internal/graph",
	ModulePath + "/internal/core",
	ModulePath + "/internal/server",
	ModulePath + "/cmd/gsqld",
}

// TracePackage is the span recorder's import path.
const TracePackage = ModulePath + "/internal/trace"

// FaultPackage is the fault-injection framework's import path.
const FaultPackage = ModulePath + "/internal/fault"

// WirePackage is the pinned wire-format package's import path.
const WirePackage = ModulePath + "/internal/wire"

// InPackages reports whether path is one of the listed packages or a
// subpackage of one. The bare module path matches only the root facade
// package itself — every package in the module is its subpackage, and
// the gates name specific subtrees, not the world.
func InPackages(path string, pkgs []string) bool {
	for _, p := range pkgs {
		if path == p {
			return true
		}
		if p != ModulePath && strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// IsPkgFunc reports whether the call invokes the named package-level
// function of the package at pkgPath (resolved through the
// type-checker, so aliases and dot-imports are seen through).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fn.Sel
	case *ast.Ident:
		id = fn
	default:
		return false
	}
	obj, ok := info.Uses[id]
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	if _, isFunc := obj.(*types.Func); !isFunc {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// NamedFromPackage unwraps t to a named (or aliased) type declared in
// the package at pkgPath, seeing through pointers; nil if it is not
// one.
func NamedFromPackage(t types.Type, pkgPath string) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return nil
	}
	return named
}
