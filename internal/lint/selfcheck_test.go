package lint_test

import (
	"testing"

	"graphsql/internal/lint"
	"graphsql/internal/lint/analysistest"
	"graphsql/internal/lint/driver"
)

// TestRepoIsClean runs the full gsqlvet suite over every package in the
// module and requires zero findings. This is the anti-rot guard: the
// moment a finding is tolerated "for now", the suite becomes a warning
// stream nobody reads, so HEAD must always be clean — fix the code or
// carry a justified //gsqlvet:allow.
func TestRepoIsClean(t *testing.T) {
	env := analysistest.SharedEnv(t)
	pkgs, err := env.Load()
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	targets := make([]*driver.Target, 0, len(pkgs))
	for _, p := range pkgs {
		targets = append(targets, &driver.Target{
			Fset: p.Fset, Files: p.Files, Pkg: p.Types, TypesInfo: p.TypesInfo,
		})
	}
	findings, err := driver.Run(lint.Analyzers, targets)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f.String())
	}
	if len(findings) > 0 {
		t.Errorf("gsqlvet found %d violation(s) at HEAD; fix them or annotate with a justified //gsqlvet:allow", len(findings))
	}
}
