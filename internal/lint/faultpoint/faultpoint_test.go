package faultpoint_test

import (
	"testing"

	"graphsql/internal/lint/analysistest"
	"graphsql/internal/lint/faultpoint"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, faultpoint.Analyzer,
		"../testdata/src/faultpoint", "graphsql/internal/chaos/fixture")
}
