// Package faultpoint implements the gsqlvet analyzer that keeps fault
// injection sites honest. Every fault.Inject call must name a point in
// fault.Registry — the registry is what docs/FAULTPOINTS.md is
// generated from and what GSQLD_FAULTS specs are validated against, so
// an unregistered point is invisible to operators and unreachable from
// a chaos schedule; it would silently never fire. The analyzer imports
// the registry directly, so registering a point and planting it cannot
// drift apart.
//
// Point names must also constant-fold at compile time: a point computed
// at runtime cannot be cross-checked here or listed in the docs.
//
// Literal schedule strings handed to fault.Parse or fault.SetSpec are
// parsed at vet time with the real parser, surfacing grammar errors and
// typo'd point names without running anything.
package faultpoint

import (
	"go/ast"
	"go/constant"

	"graphsql/internal/fault"
	"graphsql/internal/lint/analysis"
	"graphsql/internal/lint/lintutil"
)

// Analyzer flags fault.Inject calls naming unregistered or
// non-constant points, and unparseable literal schedules.
var Analyzer = &analysis.Analyzer{
	Name: "faultpoint",
	Doc: "every fault.Inject site must name a constant, registered injection " +
		"point (fault.Registry); unregistered points are invisible to " +
		"GSQLD_FAULTS and docs/FAULTPOINTS.md and would never fire",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case lintutil.IsPkgFunc(pass.TypesInfo, call, lintutil.FaultPackage, "Inject"):
				checkInject(pass, call)
			case lintutil.IsPkgFunc(pass.TypesInfo, call, lintutil.FaultPackage, "Parse", "SetSpec"):
				checkSpec(pass, call)
			}
			return true
		})
	}
	return nil
}

func checkInject(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	name, ok := constString(pass, arg)
	if !ok {
		pass.Reportf(arg.Pos(),
			"fault.Inject point is not a compile-time constant; use a registered fault.Point* constant so the site stays listed in fault.Registry")
		return
	}
	if !fault.Known(name) {
		pass.Reportf(arg.Pos(),
			"fault.Inject names unregistered point %q; add it to fault.Registry (and regenerate docs/FAULTPOINTS.md) or this site can never fire",
			name)
	}
}

// checkSpec vets literal schedule strings with the real parser. Only
// constant arguments are checked — runtime specs (GSQLD_FAULTS) are
// validated by Parse itself at arm time.
func checkSpec(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	spec, ok := constString(pass, call.Args[0])
	if !ok {
		return
	}
	if _, err := fault.Parse(spec); err != nil {
		pass.Reportf(call.Args[0].Pos(), "invalid fault schedule literal: %v", err)
	}
}

func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
