package determinism_test

import (
	"testing"

	"graphsql/internal/lint/analysistest"
	"graphsql/internal/lint/determinism"
)

func TestGated(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer,
		"../testdata/src/determinism/gated", "graphsql/internal/core/fixture")
}

func TestUngated(t *testing.T) {
	analysistest.Run(t, determinism.Analyzer,
		"../testdata/src/determinism/ungated", "graphsql/internal/obs/fixture")
}
