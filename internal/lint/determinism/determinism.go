// Package determinism implements the gsqlvet analyzer protecting the
// engine's bit-identical-results guarantee. Every result a query
// produces must be byte-for-byte identical at every worker count and
// across runs; the two classic ways Go code silently breaks that are
// (1) iterating a map while building output — map iteration order is
// deliberately randomized — and (2) folding wall-clock or random values
// into result-producing code.
//
// Rule 1 flags a `for range` over a map whose body appends to (or
// index-assigns into) a slice declared outside the loop, unless the
// function later passes that slice through a sort (sort.*, slices.Sort*
// or any sort-named helper): collect-then-sort is the sanctioned
// pattern (see storage.Catalog.TableNames or the server's metrics
// exposition). Writes into maps are order-independent and ignored.
//
// Rule 2 flags time.Now() calls and math/rand imports inside
// result-producing packages. Trace, metrics and benchmark code live
// outside the gated packages and keep their clocks.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"graphsql/internal/lint/analysis"
	"graphsql/internal/lint/lintutil"
)

// Analyzer flags map-iteration-order and clock/randomness leaks in
// result-producing packages.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flag map iteration that builds slice output without a following sort, " +
		"plus time.Now/math/rand use, inside result-producing packages; " +
		"either breaks the bit-identical-results guarantee",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !lintutil.InPackages(pass.Pkg.Path(), lintutil.ResultPathPackages) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"math/rand imported in result-producing package %s: randomness must not reach results",
					pass.Pkg.Path())
			}
		}
		// Walk per enclosing function so rule 1's "following sort" scan
		// has a scope to search.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkFunc(pass, fd.Body)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if ok && lintutil.IsPkgFunc(pass.TypesInfo, call, "time", "Now") {
				pass.Reportf(call.Pos(),
					"time.Now() in result-producing package %s: clocks must not reach results (trace/metrics code lives outside these packages)",
					pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}

// checkFunc applies rule 1 inside one function body. Function literals
// nested in body are scanned as part of it: a sort after the loop in
// the enclosing function still sanctions a closure's map-fed append.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, obj := range slicesWritten(pass, rs) {
			if !sortedAfter(pass, body, rs, obj) {
				pass.Reportf(rs.Pos(),
					"map iteration writes to slice %q in nondeterministic order with no following sort; sort the result or iterate a deterministically ordered copy of the keys",
					obj.Name())
			}
		}
		return true
	})
}

// slicesWritten collects the slice-typed variables declared outside the
// range loop that its body assigns into — via s = append(s, ...),
// s[i] = v, or any other assignment to the variable.
func slicesWritten(pass *analysis.Pass, rs *ast.RangeStmt) []types.Object {
	seen := map[types.Object]bool{}
	var out []types.Object
	record := func(e ast.Expr) {
		// Unwrap s[i] = v and s[i][j] = v down to the root identifier.
		for {
			if ix, ok := e.(*ast.IndexExpr); ok {
				e = ix.X
				continue
			}
			break
		}
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		// Variables born inside the loop body are per-iteration scratch;
		// order cannot leak through them unless they escape, which a
		// further outer-variable write would catch.
		if v.Pos() >= rs.Pos() && v.Pos() < rs.End() {
			return
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range t.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(t.X)
		}
		return true
	})
	return out
}

// sortedAfter reports whether, after the range loop, the function calls
// a sort-shaped function mentioning obj: a function from package sort
// or slices whose name starts with Sort, or any callee whose name
// contains "sort" (mergeAscending-style helpers declare their ordering
// in their name or are annotated instead).
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortCall(pass, call) {
			return true
		}
		// The sorted value must be the one the loop built.
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					mentioned = true
					return false
				}
				return true
			})
			if mentioned {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if obj, ok := pass.TypesInfo.Uses[fn.Sel]; ok && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sort":
				switch obj.Name() {
				case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
					return true
				}
				return false
			case "slices":
				return strings.HasPrefix(obj.Name(), "Sort")
			}
		}
		return strings.Contains(strings.ToLower(fn.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fn.Name), "sort")
	}
	return false
}
