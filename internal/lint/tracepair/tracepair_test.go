package tracepair_test

import (
	"testing"

	"graphsql/internal/lint/analysistest"
	"graphsql/internal/lint/tracepair"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, tracepair.Analyzer,
		"../testdata/src/tracepair", "graphsql/internal/server/fixture")
}
