// Package tracepair implements the gsqlvet analyzer that keeps trace
// spans from leaking open. A span opened with trace.Trace.Begin and
// never closed with End stays "in flight" forever: GET /queries shows
// the query stuck in that stage, CurrentStage reports it as live, and
// EXPLAIN ANALYZE renders its duration as still-running. The runtime
// cannot catch this — End on a nil trace is a no-op by design, so a
// missing End is silent.
//
// The analyzer tracks every `sp := tr.Begin(...)` whose result lands in
// a plain local variable and requires one of:
//
//   - a deferred End covering the whole function (`defer tr.End(sp)`,
//     or a deferred closure containing `tr.End(sp)`), or
//   - an End on every path: no return statement may appear between the
//     Begin and the first End of that span (position order — the
//     standard Begin / work / End / check-err shape passes, while
//     Begin / early-return-on-err / End is flagged).
//
// A Begin whose result is discarded (not assigned, or assigned to _) is
// always flagged: nothing can ever close that span. Results stored
// into struct fields (span handed off to another owner, e.g.
// exec.Context.TraceSpan) are not tracked — ownership transfers are the
// annotated exception, not the rule.
package tracepair

import (
	"go/ast"
	"go/token"
	"go/types"

	"graphsql/internal/lint/analysis"
	"graphsql/internal/lint/lintutil"
)

// Analyzer flags trace spans that are opened but not closed on all
// paths.
var Analyzer = &analysis.Analyzer{
	Name: "tracepair",
	Doc: "every trace.Trace.Begin must reach a matching End on all paths " +
		"(defer it, or close before any return); an unclosed span reports its " +
		"stage as live forever",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// isTraceMethod reports whether call invokes the named method on
// *trace.Trace.
func isTraceMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	return lintutil.NamedFromPackage(selection.Recv(), lintutil.TracePackage) != nil
}

// checkFunc analyzes one function body. Function literals are scanned
// as part of the enclosing body: a deferred closure may close a span,
// and a literal's own Begin finds its End wherever it sits in the
// declaration. Returns inside literals never count against an
// enclosing span (returnBetween skips them).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	type begin struct {
		call *ast.CallExpr
		obj  types.Object // nil when the result is discarded
	}
	var begins []begin

	ast.Inspect(body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range t.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isTraceMethod(pass.TypesInfo, call, "Begin") {
					continue
				}
				// Parallel assignment only: sp := tr.Begin(...) has one
				// rhs per lhs here (Begin returns one value).
				if len(t.Lhs) != len(t.Rhs) {
					continue
				}
				switch lhs := t.Lhs[i].(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						begins = append(begins, begin{call: call})
						continue
					}
					obj := pass.TypesInfo.Defs[lhs]
					if obj == nil {
						obj = pass.TypesInfo.Uses[lhs]
					}
					begins = append(begins, begin{call: call, obj: obj})
				default:
					// Stored into a field or element: ownership handoff,
					// tracked by the receiving code, not here.
				}
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(t.X).(*ast.CallExpr); ok && isTraceMethod(pass.TypesInfo, call, "Begin") {
				begins = append(begins, begin{call: call})
			}
		}
		return true
	})

	for _, b := range begins {
		if b.obj == nil {
			pass.Reportf(b.call.Pos(), "span from Begin is discarded; nothing can End it")
			continue
		}
		deferred, ends := endsFor(pass, body, b.obj)
		if deferred {
			continue
		}
		if len(ends) == 0 {
			pass.Reportf(b.call.Pos(), "span %q is never closed: no End(%s) in this function (defer it after Begin)", b.obj.Name(), b.obj.Name())
			continue
		}
		firstEnd := ends[0]
		for _, e := range ends[1:] {
			if e < firstEnd {
				firstEnd = e
			}
		}
		if ret := returnBetween(body, b.call.End(), firstEnd); ret != token.NoPos {
			pass.Reportf(ret, "return leaks span %q opened at %s: End it before returning or defer the End",
				b.obj.Name(), pass.Fset.Position(b.call.Pos()))
		}
	}
}

// endsFor collects the positions of End calls whose argument is obj.
// deferred reports whether one of them runs under a defer (directly or
// inside a deferred function literal), which covers every path.
func endsFor(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) (deferred bool, ends []token.Pos) {
	isEndOf := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isTraceMethod(pass.TypesInfo, call, "End") {
			return false
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				return true
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.DeferStmt:
			if isEndOf(t.Call) {
				deferred = true
				return false
			}
			// defer func() { ... tr.End(sp) ... }()
			if lit, ok := ast.Unparen(t.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(inner ast.Node) bool {
					if isEndOf(inner) {
						deferred = true
						return false
					}
					return true
				})
				if deferred {
					return false
				}
			}
		case *ast.CallExpr:
			if isEndOf(t) {
				ends = append(ends, t.Pos())
			}
		}
		return true
	})
	return deferred, ends
}

// returnBetween returns the position of the first return statement
// strictly between from and to, or NoPos. Returns inside nested
// function literals belong to the literal, not this function, and are
// skipped.
func returnBetween(body *ast.BlockStmt, from, to token.Pos) token.Pos {
	found := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if found != token.NoPos {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if ret.Pos() > from && ret.Pos() < to {
			found = ret.Pos()
			return false
		}
		return true
	})
	return found
}
