// Package parbudget implements the gsqlvet analyzer that keeps the
// worker budget airtight. The admission scheduler grants each query a
// worker count, and internal/par's helpers (par.Do, par.ForChunks, the
// solver pool) are where those grants are spent; a bare `go func`
// inside the engine's packages spawns concurrency the scheduler never
// sees, so under load the process runs more workers than it admitted —
// exactly the oversubscription the budget exists to prevent.
//
// Long-lived infrastructure goroutines (the HTTP listener, the cache
// sweeper, signal handlers) are not per-query work; they carry a
// justified //gsqlvet:allow parbudget annotation instead.
package parbudget

import (
	"go/ast"

	"graphsql/internal/lint/analysis"
	"graphsql/internal/lint/lintutil"
)

// Analyzer flags bare go statements in budget-governed packages.
var Analyzer = &analysis.Analyzer{
	Name: "parbudget",
	Doc: "flag bare `go` statements in engine/exec/graph/core/server; " +
		"per-query concurrency must flow through internal/par so the admission " +
		"scheduler's worker grants stay meaningful — annotate long-lived " +
		"infrastructure goroutines with //gsqlvet:allow parbudget <reason>",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !lintutil.InPackages(pass.Pkg.Path(), lintutil.BudgetedPackages) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"bare goroutine spawn in budget-governed package %s: route per-query work through internal/par, or annotate an infrastructure goroutine with //gsqlvet:allow parbudget <reason>",
					pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
