package parbudget_test

import (
	"testing"

	"graphsql/internal/lint/analysistest"
	"graphsql/internal/lint/parbudget"
)

func TestGated(t *testing.T) {
	analysistest.Run(t, parbudget.Analyzer,
		"../testdata/src/parbudget/gated", "graphsql/internal/graph/fixture")
}

func TestUngated(t *testing.T) {
	analysistest.Run(t, parbudget.Analyzer,
		"../testdata/src/parbudget/ungated", "graphsql/internal/bench/fixture")
}
