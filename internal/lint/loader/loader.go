// Package loader turns Go package patterns into type-checked packages
// for the gsqlvet analyzers, using only the standard library and the go
// command. It is the standalone-mode driver's front end (cmd/gsqlvet
// run as `gsqlvet ./...`), and the fixture harness and self-check test
// reuse it.
//
// Loading is two-phase, mirroring how real vet drivers work:
//
//  1. `go list -e -json -deps -export <patterns>` enumerates the target
//     packages and every dependency, compiling each dependency's export
//     data into the build cache and reporting its file path. This works
//     fully offline: the module has no external dependencies, and the
//     go command never touches the network for in-module listings.
//  2. Each target package's production sources (GoFiles — never
//     _test.go files) are parsed and type-checked with go/types, with
//     imports resolved through a gc-export-data importer reading the
//     files phase 1 reported.
//
// The same export-data map also serves the fixture harness: testdata
// packages import real engine packages (trace, fault, wire), and their
// export data comes from the same `go list` sweep.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	// ImportPath is the package's import path (or the synthetic path a
	// fixture was checked under).
	ImportPath string
	// Fset positions the package's syntax.
	Fset *token.FileSet
	// Files is the parsed production syntax (GoFiles only).
	Files []*ast.File
	// Types is the type-checker's package object.
	Types *types.Package
	// TypesInfo carries expression types, uses, defs and selections.
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
	DepsErrors []*struct{ Err string }
}

// Env binds a loader to a module: the export-data index built by one
// `go list` sweep, reusable across many Load/CheckDir calls.
type Env struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	exports    map[string]string // import path -> export data file
	targets    []*listedPackage  // in-module packages from the sweep
	imp        types.Importer
	fset       *token.FileSet
}

// NewEnv runs the go list sweep for patterns (default ./...) from the
// module root and returns an environment that can type-check both the
// listed packages and ad-hoc fixture directories against them.
func NewEnv(moduleRoot string, patterns ...string) (*Env, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-json", "-deps", "-export"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleRoot
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("go list: %v", err)
	}
	env := &Env{
		ModuleRoot: moduleRoot,
		exports:    make(map[string]string),
		fset:       token.NewFileSet(),
	}
	dec := json.NewDecoder(out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			cmd.Wait()
			return nil, fmt.Errorf("go list: decoding output: %v (stderr: %s)", err, stderr.String())
		}
		if p.Export != "" {
			env.exports[p.ImportPath] = p.Export
		}
		if p.Module != nil && !p.Standard {
			q := p
			env.targets = append(env.targets, &q)
		}
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list: %v (stderr: %s)", err, stderr.String())
	}
	env.imp = importer.ForCompiler(env.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := env.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return env, nil
}

// ModuleRoot locates the enclosing module's root directory via
// `go env GOMOD`, starting from dir (empty = current directory).
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a module")
	}
	return filepath.Dir(gomod), nil
}

// Load type-checks every in-module package the sweep found and returns
// them in listing order. A package that fails to parse or type-check
// returns an error: the analyzers assume well-typed input, and the
// tree is expected to build (tier-1) before it is vetted.
func (e *Env) Load() ([]*Package, error) {
	var out []*Package
	for _, lp := range e.targets {
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := e.check(lp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// CheckDir parses every non-test .go file in dir and type-checks the
// package under the given import path. The fixture harness uses this to
// place a testdata package at an invariant-gated path (say,
// graphsql/internal/exec/fixture) without the package living there.
func (e *Env) CheckDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}
	return e.check(importPath, files)
}

// check parses and type-checks one package from explicit file paths.
func (e *Env) check(importPath string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(e.fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", importPath, err)
		}
		syntax = append(syntax, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: e.imp}
	tpkg, err := conf.Check(importPath, e.fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("%s: typecheck: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Fset:       e.fset,
		Files:      syntax,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}
