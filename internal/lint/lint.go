// Package lint assembles the gsqlvet analyzer suite: custom static
// analyzers that mechanically enforce the engine's cross-cutting
// invariants — the ones the type system cannot express and code review
// keeps re-litigating. Each analyzer's package documents the invariant
// it guards; this package is just the roster.
//
// Run the suite standalone (go run ./cmd/gsqlvet ./...) or as a vet
// tool (go vet -vettool=$(which gsqlvet) ./...). Suppress a finding
// with a justified annotation on or directly above the offending line:
//
//	//gsqlvet:allow <analyzer> <reason>
//
// An annotation without a reason is itself a finding.
package lint

import (
	"graphsql/internal/lint/analysis"
	"graphsql/internal/lint/ctxprop"
	"graphsql/internal/lint/cursorpair"
	"graphsql/internal/lint/determinism"
	"graphsql/internal/lint/faultpoint"
	"graphsql/internal/lint/parbudget"
	"graphsql/internal/lint/tracepair"
	"graphsql/internal/lint/wirestability"
)

// Analyzers is the full gsqlvet suite, in stable order.
var Analyzers = []*analysis.Analyzer{
	ctxprop.Analyzer,
	cursorpair.Analyzer,
	determinism.Analyzer,
	faultpoint.Analyzer,
	parbudget.Analyzer,
	tracepair.Analyzer,
	wirestability.Analyzer,
}
