// Package ctxprop implements the gsqlvet analyzer that keeps the
// request path cancellable: inside the packages every query flows
// through, constructing a detached context with context.Background()
// or context.TODO() severs the cancellation chain the server threads
// from the HTTP request down to the solver's frontier loops. A query
// running under a detached context cannot be stopped by client
// disconnect, statement timeout, or shutdown — exactly the class of
// bug the facade→engine→exec→solver ctx threading work eliminated.
//
// Compatibility shims that intentionally detach (the non-ctx facade
// wrappers like Engine.Query, or bulk-encode entry points used outside
// any request) carry a justified //gsqlvet:allow ctxprop annotation.
package ctxprop

import (
	"go/ast"

	"graphsql/internal/lint/analysis"
	"graphsql/internal/lint/lintutil"
)

// Analyzer flags context.Background()/context.TODO() calls in
// request-path packages.
var Analyzer = &analysis.Analyzer{
	Name: "ctxprop",
	Doc: "flag context.Background()/context.TODO() in request-path packages " +
		"(engine, exec, graph, server, core, facade); a detached context breaks " +
		"query cancellation — thread the caller's ctx, or justify the detachment " +
		"with //gsqlvet:allow ctxprop <reason>",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !lintutil.InPackages(pass.Pkg.Path(), lintutil.RequestPathPackages) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if lintutil.IsPkgFunc(pass.TypesInfo, call, "context", "Background", "TODO") {
				pass.Reportf(call.Pos(),
					"detached context in request-path package %s: thread the caller's ctx instead of context.%s()",
					pass.Pkg.Path(), calleeName(pass, call))
			}
			return true
		})
	}
	return nil
}

func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fn.Sel.Name
	case *ast.Ident:
		return fn.Name
	}
	return "Background"
}
