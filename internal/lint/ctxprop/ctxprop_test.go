package ctxprop_test

import (
	"testing"

	"graphsql/internal/lint/analysistest"
	"graphsql/internal/lint/ctxprop"
)

func TestGated(t *testing.T) {
	analysistest.Run(t, ctxprop.Analyzer,
		"../testdata/src/ctxprop/gated", "graphsql/internal/exec/fixture")
}

func TestUngated(t *testing.T) {
	analysistest.Run(t, ctxprop.Analyzer,
		"../testdata/src/ctxprop/ungated", "graphsql/internal/bench/fixture")
}
