// Fixture for determinism, checked under an import path outside the
// result-path gate (metrics-style code keeps its clocks): no findings.
package fixture

import "time"

func clock() int64 {
	return time.Now().UnixNano()
}

func unsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
