// Fixture for determinism's map-iteration and clock rules, checked
// under a result-producing import path.
package fixture

import (
	"sort"
	"time"
)

// unsortedAppend builds output in map-iteration order: flagged.
func unsortedAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration writes to slice \"out\" in nondeterministic order"
		out = append(out, k)
	}
	return out
}

// collectThenSort is the sanctioned pattern.
func collectThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sliceSortAlso passes: slices.Sort-style and sort.Slice both count.
func sliceSortAlso(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// mapToMap is order-independent: writes into maps are ignored.
func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// scratchInsideLoop: per-iteration slices born in the body are not
// accumulated output.
func scratchInsideLoop(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		tmp := make([]int, 0, len(vs))
		tmp = append(tmp, vs...)
		total += len(tmp)
	}
	return total
}

// indexAssign through an element is a write to the outer slice too.
func indexAssign(m map[int]int, out []int) {
	for k, v := range m { // want "map iteration writes to slice \"out\" in nondeterministic order"
		out[k%len(out)] = v
	}
}

func clock() int64 {
	return time.Now().UnixNano() // want "time.Now\\(\\) in result-producing package"
}

func annotatedClock() time.Time {
	//gsqlvet:allow determinism latency histogram bucket stamp, not result data
	return time.Now()
}

// annotatedRange: an allowed iteration (order proven irrelevant by the
// caller) is suppressible like any finding.
func annotatedRange(m map[string]int) []string {
	var out []string
	//gsqlvet:allow determinism caller treats out as an unordered set
	for k := range m {
		out = append(out, k)
	}
	return out
}
