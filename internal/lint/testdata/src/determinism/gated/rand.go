package fixture

import "math/rand" // want "math/rand imported in result-producing package"

func roll() int {
	return rand.Int()
}
