// Fixture for parbudget, checked under a budget-governed import path.
package fixture

func bare(work func()) {
	go work() // want "bare goroutine spawn in budget-governed package"
}

func bareLiteral(n int) {
	for i := 0; i < n; i++ {
		go func() {}() // want "bare goroutine spawn in budget-governed package"
	}
}

// annotated: a process-lifetime listener, the sanctioned allowlist
// case.
func annotated(serve func() error) {
	//gsqlvet:allow parbudget accept loop runs for the process lifetime, not per query
	go func() { _ = serve() }()
}

func sequential(work func()) {
	work()
}
