// Fixture for parbudget, checked outside the budget-governed gate
// (offline tooling spawns freely): no findings.
package fixture

func bare(work func()) {
	go work()
}
