// Fixture for cursorpair, type-checked under a request-path import
// path.
package fixture

import (
	"graphsql"
	"graphsql/internal/exec"
)

func acquire() (*exec.Cursor, error) { return exec.NewCursor(nil, nil), nil }
func acquireOp() (exec.Operator, error) {
	return nil, nil
}
func acquireRows() (*graphsql.Rows, error) { return nil, nil }

// deferredClose is the canonical shape: the error-guard return before
// the first use is fine (the cursor is nil there), the deferred Close
// covers every later path.
func deferredClose() error {
	cur, err := acquire()
	if err != nil {
		return err
	}
	defer cur.Close()
	_, err = cur.Next(10)
	return err
}

// deferredClosure closes the cursor inside a deferred literal.
func deferredClosure() error {
	cur, err := acquire()
	if err != nil {
		return err
	}
	defer func() {
		cur.Close()
	}()
	_, err = cur.Next(10)
	return err
}

// positionalClose is fine: no return between the first use and the
// Close.
func positionalClose() {
	cur, _ := acquire()
	cur.Next(10)
	cur.Close()
}

// resultDrain: Result drains to exhaustion and closes, so it counts
// as the release.
func resultDrain() error {
	rows, err := acquireRows()
	if err != nil {
		return err
	}
	_, err = rows.Result()
	return err
}

// earlyReturn leaks the live tree on the error path after the cursor
// was used.
func earlyReturn() error {
	cur, _ := acquire()
	if _, err := cur.Next(10); err != nil {
		return err // want "return leaks cursor \"cur\""
	}
	cur.Close()
	return nil
}

// neverClosed has no Close, no Result and no handoff.
func neverClosed() {
	cur, _ := acquire() // want "cursor \"cur\" is never closed"
	cur.Next(10)
}

// operatorNeverClosed: the Operator interface is held to the same
// pairing.
func operatorNeverClosed() {
	op, _ := acquireOp() // want "cursor \"op\" is never closed"
	op.Open(nil)
}

// discarded cursors can never be closed.
func discarded() {
	_, _ = acquire() // want "cursor is discarded"
	acquire()        // want "cursor is discarded"
}

// handoffArg: passing the cursor to another call transfers ownership.
func handoffArg() {
	cur, _ := acquire()
	consume(cur)
}

// handoffReturn: returning the cursor transfers ownership to the
// caller.
func handoffReturn() (*exec.Cursor, error) {
	cur, err := acquire()
	if err != nil {
		return nil, err
	}
	return cur, nil
}

// handoffField: storing into a field transfers ownership to the
// struct's owner.
func handoffField(h *holder) {
	cur, _ := acquire()
	h.cur = cur
}

// annotated: the cursor outlives this function by design; suppressed
// with a reason.
func annotated() {
	//gsqlvet:allow cursorpair cursor closed by the registry that owns it
	cur, _ := acquire()
	cur.Next(10)
}

type holder struct{ cur *exec.Cursor }

func consume(*exec.Cursor) {}
