// Fixture for cursorpair, type-checked under an import path outside
// the request-path gate: the same leak produces no findings.
package fixture

import "graphsql/internal/exec"

func acquire() (*exec.Cursor, error) { return exec.NewCursor(nil, nil), nil }

func neverClosed() {
	cur, _ := acquire()
	cur.Next(10)
}
