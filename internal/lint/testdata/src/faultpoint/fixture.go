// Fixture for faultpoint. Not path-gated: Inject sites are planted in
// engine packages, but the rule holds anywhere the fault package is
// used.
package fixture

import "graphsql/internal/fault"

// registered points pass, whether spelled as the constant or as an
// equal literal (constant folding sees through both).
func registered() error {
	if err := fault.Inject(fault.PointSolverGroup); err != nil {
		return err
	}
	return fault.Inject("solver.group")
}

const localAlias = fault.PointExecOperator

func aliased() error {
	return fault.Inject(localAlias)
}

func typo() error {
	return fault.Inject("solver.gruop") // want "unregistered point \"solver.gruop\""
}

func computed(name string) error {
	return fault.Inject(name) // want "not a compile-time constant"
}

// literal schedules are parsed at vet time with the real parser.
func schedules() {
	_ = fault.SetSpec(fault.PointSolverGroup + ":panic:p=0.5")
	_ = fault.SetSpec("server.cache.insrt:error") // want "invalid fault schedule literal"
	_, _ = fault.Parse("solver.group:explode")    // want "invalid fault schedule literal"
}

// annotated: a point armed only in a sandboxed harness, outside the
// registry by design.
func annotated() error {
	//gsqlvet:allow faultpoint harness-local point, never armed via GSQLD_FAULTS
	return fault.Inject("harness.local")
}
