// Fixture for ctxprop, type-checked under an import path outside the
// request-path gate: the same detached contexts produce no findings.
package fixture

import "context"

func detached() context.Context {
	return context.Background()
}

func todo() context.Context {
	return context.TODO()
}
