// Fixture for ctxprop, type-checked under a request-path import path.
package fixture

import "context"

func detached() context.Context {
	return context.Background() // want "detached context in request-path package"
}

func todo() context.Context {
	return context.TODO() // want "detached context in request-path package"
}

func annotatedPrevLine() context.Context {
	//gsqlvet:allow ctxprop compat shim for non-ctx callers
	return context.Background()
}

func annotatedSameLine() context.Context {
	return context.Background() //gsqlvet:allow ctxprop compat shim for non-ctx callers
}

// A reasonless annotation is itself a finding, and it suppresses
// nothing: the detached context two lines below it still fires.
func reasonless() context.Context {
	//gsqlvet:allow ctxprop
	// want-above "no justification"
	return context.Background() // want "detached context in request-path package"
}

func threaded(ctx context.Context) context.Context {
	return ctx
}
