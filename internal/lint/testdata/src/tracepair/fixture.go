// Fixture for tracepair. The analyzer is not path-gated: span
// discipline applies wherever a trace is written.
package fixture

import "graphsql/internal/trace"

// deferredEnd is the canonical shape.
func deferredEnd(tr *trace.Trace) {
	sp := tr.Begin(trace.NoSpan, "stage")
	defer tr.End(sp)
	work()
}

// deferredClosure closes the span inside a deferred literal.
func deferredClosure(tr *trace.Trace) {
	sp := tr.Begin(trace.NoSpan, "stage")
	defer func() {
		tr.End(sp)
	}()
	work()
}

// positionalEnd is fine: no return can skip the End.
func positionalEnd(tr *trace.Trace) error {
	sp := tr.Begin(trace.NoSpan, "stage")
	err := mayFail()
	tr.End(sp)
	if err != nil {
		return err
	}
	return nil
}

// earlyReturn leaks the span on the error path.
func earlyReturn(tr *trace.Trace) error {
	sp := tr.Begin(trace.NoSpan, "stage")
	if err := mayFail(); err != nil {
		return err // want "return leaks span \"sp\""
	}
	tr.End(sp)
	return nil
}

// neverClosed has no End at all.
func neverClosed(tr *trace.Trace) {
	sp := tr.Begin(trace.NoSpan, "stage") // want "span \"sp\" is never closed"
	work()
	_ = sp
}

// discarded spans can never be closed.
func discarded(tr *trace.Trace) {
	_ = tr.Begin(trace.NoSpan, "stage") // want "span from Begin is discarded"
	tr.Begin(trace.NoSpan, "stage")     // want "span from Begin is discarded"
}

// literalReturn: a return inside a nested function literal does not
// count against the enclosing span.
func literalReturn(tr *trace.Trace) {
	sp := tr.Begin(trace.NoSpan, "stage")
	f := func() error {
		return mayFail()
	}
	_ = f()
	tr.End(sp)
}

// handoffToClosure: an End anywhere in the function body — even inside
// a stored closure — counts as closure of the span.
func handoffToClosure(tr *trace.Trace) {
	sp := tr.Begin(trace.NoSpan, "stage")
	register(func() { tr.End(sp) })
}

// annotated: the span outlives this function by design; suppressed
// with a reason.
func annotated(tr *trace.Trace) {
	//gsqlvet:allow tracepair span closed by the drain loop that owns spans
	sp := tr.Begin(trace.NoSpan, "stage")
	spans = append(spans, sp)
}

var (
	finalizers []func()
	spans      []trace.SpanID
)

func register(f func()) { finalizers = append(finalizers, f) }
func work()             {}
func mayFail() error    { return nil }
