// Fixture for wirestability's literal rule: composite literals of real
// internal/wire types, from any package in the module, must be keyed.
package fixture

import "graphsql/internal/wire"

func keyed() wire.Error {
	return wire.Error{Code: "internal", Message: "boom"}
}

func unkeyed() wire.Error {
	return wire.Error{"internal", "boom"} // want "unkeyed composite literal of wire type Error"
}

func unkeyedPointer() *wire.Error {
	return &wire.Error{"internal", "boom"} // want "unkeyed composite literal of wire type Error"
}

func empty() wire.Error {
	return wire.Error{}
}

// nonWireUnkeyed: unkeyed literals of local types are vet's business
// (composites), not wirestability's.
type local struct{ a, b string }

func nonWireUnkeyed() local {
	return local{"x", "y"}
}

// annotated: a golden-bytes test helper constructing a frame
// positionally on purpose.
func annotated() wire.Error {
	//gsqlvet:allow wirestability golden-frame constructor; field order is the assertion
	return wire.Error{"internal", "boom"}
}
