// Fixture for wirestability's declaration rule, type-checked AS the
// wire package's import path: exported fields of structs declared here
// must pin their wire name with a json tag.
package wire

type Tagged struct {
	Code    string `json:"code"`
	Message string `json:"message,omitempty"`
	hidden  int
}

type Untagged struct {
	Code    string `json:"code"`
	Message string // want "exported wire field Untagged.Message has no json tag"
}

type partiallyTagged struct {
	Rows [][]any `json:"rows"`
	Next string  // want "exported wire field partiallyTagged.Next has no json tag"
}

// annotated: an envelope only ever encoded by hand, never by
// encoding/json.
type annotatedEnvelope struct {
	//gsqlvet:allow wirestability frame assembled byte-wise by the stream writer
	Raw []byte
}

func use() (Tagged, Untagged, partiallyTagged, annotatedEnvelope) {
	return Tagged{}, Untagged{}, partiallyTagged{}, annotatedEnvelope{}
}

var _ = Tagged{hidden: 0}
