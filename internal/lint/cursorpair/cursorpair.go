// Package cursorpair implements the gsqlvet analyzer that keeps pull
// cursors and operator trees from leaking. Under the pull executor a
// cursor owns a live operator tree — open trace spans, snapshot
// references, per-operator state — released only by Close. Exhaustion
// and errors close implicitly, but a consumer that abandons a cursor
// early (error between batches, client disconnect, early return) and
// never calls Close keeps the tree alive: its "execute" span reports
// the query as in flight forever and the snapshot columns stay
// reachable. The runtime cannot catch this — there are no finalizers
// by design.
//
// The analyzer tracks every local variable in a request-path package
// assigned from a call that produces a cursor-shaped value —
// exec.Cursor, exec.Operator or the facade's Rows — and requires one
// of:
//
//   - a release covering the whole function: a deferred Close
//     (`defer cur.Close()`, or a deferred closure containing it), or
//   - a release on every path: a positional Close (or Result, which
//     drains and closes) with no return statement between the
//     cursor's first use and that release, or
//   - an ownership handoff: the variable passed to another call,
//     returned, stored into a field or composite literal, or otherwise
//     used outside a method/field selection — the receiving code owns
//     the Close then.
//
// Returns *before* the cursor's first use are not flagged: the
// ubiquitous `cur, err := acquire(); if err != nil { return err }`
// guard runs while the cursor is nil. An acquisition whose result is
// discarded (not assigned, or assigned to _) is always flagged.
package cursorpair

import (
	"go/ast"
	"go/token"
	"go/types"

	"graphsql/internal/lint/analysis"
	"graphsql/internal/lint/lintutil"
)

// Analyzer flags cursors that are acquired but not closed on all paths
// in request-path packages.
var Analyzer = &analysis.Analyzer{
	Name: "cursorpair",
	Doc: "every cursor acquisition (exec.Cursor, exec.Operator, Rows) in a " +
		"request-path package must reach Close on all paths (defer it, close " +
		"before any return, or hand the cursor off); an unclosed cursor pins " +
		"its operator tree and snapshot forever",
	Run: run,
}

// releasingMethods are the methods that release the cursor's operator
// tree: Close directly, Result by draining to exhaustion (which closes
// implicitly) and then closing.
var releasingMethods = map[string]bool{"Close": true, "Result": true}

func run(pass *analysis.Pass) error {
	if !lintutil.InPackages(pass.Pkg.Path(), lintutil.RequestPathPackages) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// cursorType reports whether t is (a pointer to) one of the tracked
// cursor-shaped types.
func cursorType(t types.Type) bool {
	if named := lintutil.NamedFromPackage(t, lintutil.ModulePath+"/internal/exec"); named != nil {
		name := named.Obj().Name()
		return name == "Cursor" || name == "Operator"
	}
	if named := lintutil.NamedFromPackage(t, lintutil.ModulePath); named != nil {
		return named.Obj().Name() == "Rows"
	}
	return false
}

// acquiresCursor reports whether call produces a cursor as its only or
// first result (the `(cursor, error)` shape).
func acquiresCursor(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && cursorType(t.At(0).Type())
	default:
		return cursorType(t)
	}
}

// checkFunc analyzes one function body, function literals included
// (a deferred closure may close a cursor; returns inside literals
// never count against an enclosing cursor).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	type acq struct {
		call *ast.CallExpr
		obj  types.Object // nil when the result is discarded
	}
	var acqs []acq

	ast.Inspect(body, func(n ast.Node) bool {
		switch t := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range t.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !acquiresCursor(pass.TypesInfo, call) {
					continue
				}
				// Only the single-call form binds result 0 to Lhs[i];
				// a := f() and a, err := f() both have one rhs.
				if len(t.Rhs) != 1 {
					continue
				}
				switch lhs := t.Lhs[i].(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						acqs = append(acqs, acq{call: call})
						continue
					}
					obj := pass.TypesInfo.Defs[lhs]
					if obj == nil {
						obj = pass.TypesInfo.Uses[lhs]
					}
					acqs = append(acqs, acq{call: call, obj: obj})
				default:
					// Stored straight into a field or element: an
					// ownership handoff, tracked by the receiving type.
				}
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(t.X).(*ast.CallExpr); ok && acquiresCursor(pass.TypesInfo, call) {
				acqs = append(acqs, acq{call: call})
			}
		}
		return true
	})

	for _, a := range acqs {
		if a.obj == nil {
			pass.Reportf(a.call.Pos(), "cursor is discarded; nothing can Close it")
			continue
		}
		u := usesOf(pass, body, a.obj)
		if u.deferredClose {
			continue
		}
		if u.escapes {
			continue // handed off; the receiver owns the Close
		}
		if len(u.closes) == 0 {
			pass.Reportf(a.call.Pos(),
				"cursor %q is never closed: no Close(/Result) and no handoff in this function (defer %s.Close() after the error check)",
				a.obj.Name(), a.obj.Name())
			continue
		}
		firstClose := u.closes[0]
		for _, p := range u.closes[1:] {
			if p < firstClose {
				firstClose = p
			}
		}
		// Returns before the first use run while the cursor is nil (the
		// acquire-then-check-err guard); returns after it but before the
		// release leak a live tree.
		firstUse := firstClose
		for _, p := range u.uses {
			if p < firstUse {
				firstUse = p
			}
		}
		if ret := returnBetween(body, firstUse, firstClose); ret != token.NoPos {
			pass.Reportf(ret, "return leaks cursor %q acquired at %s: Close it before returning or defer the Close",
				a.obj.Name(), pass.Fset.Position(a.call.Pos()))
		}
	}
}

// cursorUses summarizes how one cursor variable is used in a body.
type cursorUses struct {
	deferredClose bool        // a releasing method runs under defer
	escapes       bool        // used outside a method/field selection
	closes        []token.Pos // positional releasing-method calls
	uses          []token.Pos // method/field selections (Close included)
}

// usesOf classifies every use of obj in body. A use of the identifier
// whose parent is a selector (obj.Method, obj.Field) is a plain use; a
// releasing-method call is a close; anything else — call argument,
// return value, composite literal, assignment, address-of — is an
// escape.
func usesOf(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) cursorUses {
	var u cursorUses

	isUseOf := func(id *ast.Ident) bool { return pass.TypesInfo.Uses[id] == obj }
	// releaseOn reports whether call is obj.Close() / obj.Result().
	releaseOn := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !releasingMethods[sel.Sel.Name] {
			return false
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		return ok && isUseOf(id)
	}

	var walk func(n ast.Node, parent ast.Node, inDefer bool)
	walk = func(n ast.Node, parent ast.Node, inDefer bool) {
		if n == nil {
			return
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			if releaseOn(d.Call) {
				u.deferredClose = true
			}
			// defer func() { ... cur.Close() ... }() counts too.
			walk(d.Call, d, true)
			return
		}
		if inDefer && releaseOn(n) {
			u.deferredClose = true
		}
		if id, ok := n.(*ast.Ident); ok && isUseOf(id) {
			if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id {
				u.uses = append(u.uses, id.Pos())
			} else {
				u.escapes = true
			}
			return
		}
		if releaseOn(n) {
			u.closes = append(u.closes, n.Pos())
		}
		for _, child := range children(n) {
			walk(child, n, inDefer)
		}
	}
	walk(body, nil, false)
	return u
}

// children returns the direct child nodes of n, in source order.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}

// returnBetween returns the position of the first return statement
// strictly between from and to, or NoPos. Returns inside nested
// function literals belong to the literal and are skipped.
func returnBetween(body *ast.BlockStmt, from, to token.Pos) token.Pos {
	found := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if found != token.NoPos {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if ret.Pos() > from && ret.Pos() < to {
			found = ret.Pos()
			return false
		}
		return true
	})
	return found
}
