package cursorpair_test

import (
	"testing"

	"graphsql/internal/lint/analysistest"
	"graphsql/internal/lint/cursorpair"
)

func TestGated(t *testing.T) {
	analysistest.Run(t, cursorpair.Analyzer,
		"../testdata/src/cursorpair/gated", "graphsql/internal/server/fixture")
}

func TestUngated(t *testing.T) {
	analysistest.Run(t, cursorpair.Analyzer,
		"../testdata/src/cursorpair/ungated", "graphsql/internal/bench/fixture")
}
