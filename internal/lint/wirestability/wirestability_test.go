package wirestability_test

import (
	"testing"

	"graphsql/internal/lint/analysistest"
	"graphsql/internal/lint/wirestability"
)

// TestDecl checks the declaration rule by type-checking the fixture AS
// the wire package's own import path.
func TestDecl(t *testing.T) {
	analysistest.Run(t, wirestability.Analyzer,
		"../testdata/src/wirestability/decl", "graphsql/internal/wire")
}

// TestUse checks the literal rule from an importing package.
func TestUse(t *testing.T) {
	analysistest.Run(t, wirestability.Analyzer,
		"../testdata/src/wirestability/use", "graphsql/internal/server/fixture")
}
