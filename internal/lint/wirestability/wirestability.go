// Package wirestability implements the gsqlvet analyzer guarding the
// byte-pinned wire format. internal/wire's structs are the protocol:
// clients hash-pin the encoding, and the format test locks the golden
// bytes. Two mechanical mistakes can still slip through a refactor:
//
//   - An unkeyed composite literal of a wire type (wire.Header{v1, v2})
//     silently reshuffles field meaning when a field is added or
//     reordered — the code still compiles, the bytes change.
//   - An exported wire field without a json tag encodes under its Go
//     name, so a rename that is invisible to Go callers is a silent
//     protocol break.
//
// Rule 1 applies module-wide to every literal of a type declared in
// internal/wire; rule 2 applies to the struct declarations themselves.
package wirestability

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"

	"graphsql/internal/lint/analysis"
	"graphsql/internal/lint/lintutil"
)

// Analyzer flags unkeyed wire-type literals and untagged exported wire
// fields.
var Analyzer = &analysis.Analyzer{
	Name: "wirestability",
	Doc: "composite literals of internal/wire types must use keyed fields, and " +
		"exported wire struct fields must carry json tags; either omission lets " +
		"a refactor silently change the pinned wire encoding",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.CompositeLit); ok {
				checkLiteral(pass, lit)
			}
			return true
		})
	}
	if pass.Pkg.Path() == lintutil.WirePackage {
		for _, f := range pass.Files {
			checkDecls(pass, f)
		}
	}
	return nil
}

// checkLiteral flags unkeyed struct literals of wire-package types.
// Only struct literals with at least one element can be unkeyed; array
// and map literals are inherently positional or keyed.
func checkLiteral(pass *analysis.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	named := lintutil.NamedFromPackage(tv.Type, lintutil.WirePackage)
	if named == nil {
		return
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return
	}
	for _, el := range lit.Elts {
		if _, keyed := el.(*ast.KeyValueExpr); !keyed {
			pass.Reportf(lit.Pos(),
				"unkeyed composite literal of wire type %s: positional fields silently change meaning when the struct evolves; use field: value",
				named.Obj().Name())
			return
		}
	}
}

// checkDecls flags exported fields of structs declared in the wire
// package that have no json tag. The tag is what pins the field's name
// on the wire; without it the encoding tracks the Go identifier.
func checkDecls(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			tag := ""
			if field.Tag != nil {
				tag = reflect.StructTag(strings.Trim(field.Tag.Value, "`")).Get("json")
			}
			for _, name := range field.Names {
				if !name.IsExported() {
					continue
				}
				if tag == "" {
					pass.Reportf(name.Pos(),
						"exported wire field %s.%s has no json tag: the wire name would track the Go identifier, so a rename silently breaks the pinned encoding",
						ts.Name.Name, name.Name)
				}
			}
		}
		return true
	})
}
