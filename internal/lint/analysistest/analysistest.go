// Package analysistest runs one gsqlvet analyzer over a fixture
// package and compares its findings against `// want "regexp"`
// comments in the fixture source, the same contract as
// golang.org/x/tools' analysistest:
//
//   - a line carrying `// want "re"` must produce a finding on that
//     line whose message matches re (several quoted patterns expect
//     several findings on the line);
//   - any finding on a line without a matching want is unexpected.
//
// Fixtures live under internal/lint/testdata/src/<analyzer>/ and are
// type-checked under a caller-chosen synthetic import path, so a
// path-gated analyzer can be exercised both inside and outside its
// gate without the fixture living in a real engine package. Fixtures
// may import real module packages (trace, fault, wire); their export
// data comes from the shared loader sweep.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"graphsql/internal/lint/analysis"
	"graphsql/internal/lint/loader"
)

var (
	envOnce sync.Once
	env     *loader.Env
	envErr  error
)

// SharedEnv returns a process-wide loader environment (one `go list`
// sweep per test binary).
func SharedEnv(t *testing.T) *loader.Env {
	t.Helper()
	envOnce.Do(func() {
		root, err := loader.ModuleRoot(".")
		if err != nil {
			envErr = err
			return
		}
		env, envErr = loader.NewEnv(root)
	})
	if envErr != nil {
		t.Fatalf("loader environment: %v", envErr)
	}
	return env
}

// Run checks the fixture package in dir under importPath with a, then
// matches findings against the fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	e := SharedEnv(t)
	pkg, err := e.CheckDir(dir, importPath)
	if err != nil {
		t.Fatalf("fixture %s: %v", dir, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report: func(d analysis.Diagnostic) {
			d.Analyzer = a.Name
			diags = append(diags, d)
		},
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	diags = analysis.Filter(pkg.Fset, pkg.Files, diags)

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, delta, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				k := key{posn.Filename, posn.Line + delta}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", posn, p, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, d := range diags {
		posn := pkg.Fset.Position(d.Pos)
		k := key{posn.Filename, posn.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s: %s", posn, d.Analyzer, d.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no finding matched want %q", k.file, k.line, re)
		}
	}
}

// parseWant extracts the quoted patterns from a `// want "re" "re"`
// comment. The `// want-above` form expects the finding one line up —
// for diagnostics anchored on a comment line (a malformed
// gsqlvet:allow), where a trailing want cannot coexist with the
// comment it describes.
func parseWant(text string) (patterns []string, delta int, _ bool) {
	rest, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		rest, ok = strings.CutPrefix(text, "// want-above ")
		if !ok {
			return nil, 0, false
		}
		delta = -1
	}
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		// Patterns are Go string literals, so \" and \\ escape like in
		// source (matching x/tools analysistest).
		quoted, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, 0, false
		}
		p, err := strconv.Unquote(quoted)
		if err != nil {
			return nil, 0, false
		}
		patterns = append(patterns, p)
		rest = rest[len(quoted):]
	}
	return patterns, delta, len(patterns) > 0
}
