package graphsql

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"graphsql/internal/types"
)

// LoadCSV bulk-loads CSV data into an existing table. The first record
// must be a header naming a subset of the table's columns (matched
// case-insensitively, in any order); remaining columns are filled with
// NULL. Cell parsing follows the column type; empty cells are NULL.
// It returns the number of rows loaded.
//
// Together with cmd/ldbcgen this round-trips generated datasets
// through files.
func (db *DB) LoadCSV(table string, r io.Reader) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.eng.Catalog().Table(table)
	if !ok {
		return 0, fmt.Errorf("table %q does not exist", table)
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("reading CSV header: %w", err)
	}
	colIdx := make([]int, len(header))
	for i, name := range header {
		idx := t.Schema.ColIndex("", strings.TrimSpace(name))
		if idx < 0 {
			return 0, fmt.Errorf("table %s has no column %q", t.Name, name)
		}
		colIdx[i] = idx
	}
	rows := 0
	rowBuf := make([]types.Value, len(t.Schema))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return rows, fmt.Errorf("CSV row %d: %w", rows+2, err)
		}
		for i := range rowBuf {
			rowBuf[i] = types.NewNull(t.Schema[i].Kind)
		}
		for i, cell := range rec {
			v, err := parseCell(cell, t.Schema[colIdx[i]].Kind)
			if err != nil {
				return rows, fmt.Errorf("CSV row %d column %s: %w", rows+2, header[i], err)
			}
			rowBuf[colIdx[i]] = v
		}
		if err := t.AppendRow(rowBuf); err != nil {
			return rows, err
		}
		rows++
	}
	return rows, nil
}

// LoadCSVFile is LoadCSV over a file path.
func (db *DB) LoadCSVFile(table, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return db.LoadCSV(table, f)
}

// DumpCSV writes a query result as CSV (header + rows). Dates use
// YYYY-MM-DD; nested-table paths are rendered with Path.String; NULLs
// are empty cells.
func (db *DB) DumpCSV(w io.Writer, sql string, args ...any) error {
	res, err := db.Query(sql, args...)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(res.Columns); err != nil {
		return err
	}
	rec := make([]string, len(res.Columns))
	for _, row := range res.Rows {
		for j, v := range row {
			if v == nil {
				rec[j] = ""
			} else {
				rec[j] = formatCell(v)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// parseCell converts one CSV cell to a typed value.
func parseCell(cell string, kind types.Kind) (types.Value, error) {
	s := strings.TrimSpace(cell)
	if s == "" {
		return types.NewNull(kind), nil
	}
	switch kind {
	case types.KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return types.Value{}, fmt.Errorf("invalid integer %q", s)
		}
		return types.NewInt(i), nil
	case types.KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return types.Value{}, fmt.Errorf("invalid number %q", s)
		}
		return types.NewFloat(f), nil
	case types.KindBool:
		switch strings.ToLower(s) {
		case "true", "t", "1":
			return types.NewBool(true), nil
		case "false", "f", "0":
			return types.NewBool(false), nil
		}
		return types.Value{}, fmt.Errorf("invalid boolean %q", s)
	case types.KindDate:
		d, err := types.ParseDate(s)
		if err != nil {
			return types.Value{}, err
		}
		return types.NewDate(d), nil
	case types.KindString:
		return types.NewString(cell), nil
	}
	return types.Value{}, fmt.Errorf("cannot load CSV into %v column", kind)
}

// Tables lists the catalog's table names; Schema describes one table.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.eng.Catalog().TableNames()
}

// TableSchema returns "name TYPE" descriptions of a table's columns.
func (db *DB) TableSchema(table string) ([]string, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.eng.Catalog().Table(table)
	if !ok {
		return nil, fmt.Errorf("table %q does not exist", table)
	}
	out := make([]string, len(t.Schema))
	for i, m := range t.Schema {
		out[i] = fmt.Sprintf("%s %v", m.Name, m.Kind)
	}
	return out, nil
}
