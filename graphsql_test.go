package graphsql

import (
	"strings"
	"testing"
)

// appendixDB builds the sample data of the paper's appendix (figure 2):
// Persons and Friends with creationDate and weight.
func appendixDB(t testing.TB) *DB {
	t.Helper()
	db := Open()
	db.MustExec(`CREATE TABLE persons (id BIGINT, firstName VARCHAR, lastName VARCHAR)`)
	db.MustExec(`CREATE TABLE friends (person1 BIGINT, person2 BIGINT, creationDate DATE, weight DOUBLE)`)
	db.MustExec(`INSERT INTO persons VALUES
		(933,  'Mahinda', 'Perera'),
		(1129, 'Carmen',  'Lepland'),
		(8333, 'Chen',    'Wang'),
		(4139, 'Hans',    'Johansson')`)
	// Undirected friendships stored as two directed edges, as in §4.
	db.MustExec(`INSERT INTO friends VALUES
		(933,  1129, '2010-03-24', 0.5),
		(1129, 933,  '2010-03-24', 0.5),
		(1129, 8333, '2010-12-02', 2.0),
		(8333, 1129, '2010-12-02', 2.0),
		(8333, 4139, '2012-06-08', 1.0),
		(4139, 8333, '2012-06-08', 1.0)`)
	return db
}

func TestQueryA1CostOfShortestPath(t *testing.T) {
	db := appendixDB(t)
	// LDBC SNB Q13 shape: paper appendix A.1.
	got, err := db.QueryScalar(
		`SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (person1, person2)`,
		933, 8333)
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(2) {
		t.Fatalf("distance = %v, want 2", got)
	}
}

func TestQueryA2VertexProperties(t *testing.T) {
	db := appendixDB(t)
	res, err := db.Query(`
		SELECT p1.firstName || ' ' || p1.lastName AS person1,
		       p2.firstName || ' ' || p2.lastName AS person2,
		       CHEAPEST SUM(1) AS distance
		FROM persons p1, persons p2
		WHERE p1.id = ? AND p2.id = ?
		  AND p1.id REACHES p2.id OVER friends EDGE (person1, person2)`,
		933, 8333)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("got %d rows, want 1\n%s", res.Len(), res)
	}
	row := res.Rows[0]
	if row[0] != "Mahinda Perera" || row[1] != "Chen Wang" || row[2] != int64(2) {
		t.Fatalf("row = %v, want [Mahinda Perera, Chen Wang, 2]", row)
	}
}

func TestQueryA3ReachabilityOverCTE(t *testing.T) {
	db := appendixDB(t)
	res, err := db.Query(`
		WITH friends1 AS (
			SELECT * FROM friends WHERE creationDate < '2011-01-01'
		)
		SELECT firstName || ' ' || lastName AS person
		FROM persons
		WHERE ? REACHES id OVER friends1 EDGE (person1, person2)
		ORDER BY person`,
		933)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Carmen Lepland", "Chen Wang", "Mahinda Perera"}
	if res.Len() != len(want) {
		t.Fatalf("got %d rows, want %d\n%s", res.Len(), len(want), res)
	}
	for i, w := range want {
		if res.Rows[i][0] != w {
			t.Errorf("row %d = %v, want %s", i, res.Rows[i][0], w)
		}
	}
}

func TestQueryA4WeightedPathsAndUnnest(t *testing.T) {
	db := appendixDB(t)
	res, err := db.Query(`
		WITH friends1 AS (
			SELECT * FROM friends WHERE creationDate < '2011-01-01'
		)
		SELECT firstName || ' ' || lastName AS person,
		       CHEAPEST SUM(f: CAST(weight * 2 AS int)) AS (cost, path)
		FROM persons
		WHERE ? REACHES id OVER friends1 f EDGE (person1, person2)
		ORDER BY cost`,
		933)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("got %d rows, want 3\n%s", res.Len(), res)
	}
	// Row 0: Mahinda, cost 0, empty path.
	if res.Rows[0][0] != "Mahinda Perera" || res.Rows[0][1] != int64(0) {
		t.Fatalf("row 0 = %v", res.Rows[0])
	}
	if p := res.Rows[0][2].(*Path); p.Len() != 0 {
		t.Fatalf("Mahinda's path should be empty, got %v", p)
	}
	if res.Rows[1][0] != "Carmen Lepland" || res.Rows[1][1] != int64(1) {
		t.Fatalf("row 1 = %v", res.Rows[1])
	}
	if res.Rows[2][0] != "Chen Wang" || res.Rows[2][1] != int64(5) {
		t.Fatalf("row 2 = %v", res.Rows[2])
	}
	if p := res.Rows[2][2].(*Path); p.Len() != 2 {
		t.Fatalf("Chen's path should have 2 hops, got %v", p)
	}

	// Unnesting drops the empty path (inner lateral join).
	res2, err := db.Query(`
		SELECT T.person, T.cost, R.person1, R.person2
		FROM (
			WITH friends1 AS (
				SELECT * FROM friends WHERE creationDate < '2011-01-01'
			)
			SELECT firstName || ' ' || lastName AS person,
			       CHEAPEST SUM(f: CAST(weight * 2 AS int)) AS (cost, path)
			FROM persons
			WHERE ? REACHES id OVER friends1 f EDGE (person1, person2)
		) T, UNNEST(T.path) AS R
		ORDER BY T.cost, R.person1`,
		933)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Len() != 3 {
		t.Fatalf("unnested: got %d rows, want 3\n%s", res2.Len(), res2)
	}
	// Carmen: 933->1129. Chen: 933->1129, 1129->8333.
	if res2.Rows[0][0] != "Carmen Lepland" || res2.Rows[0][2] != int64(933) || res2.Rows[0][3] != int64(1129) {
		t.Fatalf("row 0 = %v", res2.Rows[0])
	}
	if res2.Rows[1][0] != "Chen Wang" || res2.Rows[1][2] != int64(933) {
		t.Fatalf("row 1 = %v", res2.Rows[1])
	}
	if res2.Rows[2][0] != "Chen Wang" || res2.Rows[2][2] != int64(1129) || res2.Rows[2][3] != int64(8333) {
		t.Fatalf("row 2 = %v", res2.Rows[2])
	}
}

func TestOuterUnnestKeepsEmptyPaths(t *testing.T) {
	db := appendixDB(t)
	res, err := db.Query(`
		SELECT T.person, T.cost, R.person1
		FROM (
			SELECT firstName AS person,
			       CHEAPEST SUM(f: 1) AS (cost, path)
			FROM persons
			WHERE ? REACHES id OVER friends f EDGE (person1, person2)
		) T LEFT JOIN UNNEST(T.path) AS R ON TRUE
		ORDER BY T.cost, R.person1 NULLS FIRST`,
		933)
	if err != nil {
		t.Fatal(err)
	}
	// Mahinda (cost 0) must survive with NULL person1.
	if res.Len() == 0 || res.Rows[0][0] != "Mahinda" || res.Rows[0][2] != nil {
		t.Fatalf("outer unnest lost the empty path:\n%s", res)
	}
}

func TestUnnestWithOrdinality(t *testing.T) {
	db := appendixDB(t)
	res, err := db.Query(`
		SELECT R.person1, R.person2, R.ordinality
		FROM (
			SELECT CHEAPEST SUM(f: 1) AS (cost, path)
			WHERE ? REACHES ? OVER friends f EDGE (person1, person2)
		) T, UNNEST(T.path) WITH ORDINALITY AS R
		ORDER BY R.ordinality`,
		933, 4139)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("expected a 3-hop path, got %d rows\n%s", res.Len(), res)
	}
	for i := 0; i < 3; i++ {
		if res.Rows[i][2] != int64(i+1) {
			t.Errorf("ordinality row %d = %v, want %d", i, res.Rows[i][2], i+1)
		}
	}
	// Hops must chain: person2 of hop i == person1 of hop i+1.
	for i := 0; i+1 < 3; i++ {
		if res.Rows[i][1] != res.Rows[i+1][0] {
			t.Errorf("path does not chain at hop %d: %v -> %v", i, res.Rows[i][1], res.Rows[i+1][0])
		}
	}
}

func TestUnreachablePairsAreFiltered(t *testing.T) {
	db := appendixDB(t)
	db.MustExec(`INSERT INTO persons VALUES (9999, 'Iso', 'Lated')`)
	res, err := db.Query(
		`SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (person1, person2)`,
		933, 9999)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("unreachable pair should yield no rows, got\n%s", res)
	}
}

func TestNonPositiveWeightErrors(t *testing.T) {
	db := appendixDB(t)
	_, err := db.Query(
		`SELECT CHEAPEST SUM(f: weight - 0.5)
		 WHERE ? REACHES ? OVER friends f EDGE (person1, person2)`,
		933, 8333)
	if err == nil || !strings.Contains(err.Error(), "positive") {
		t.Fatalf("expected strictly-positive weight error, got %v", err)
	}
	_, err = db.Query(
		`SELECT CHEAPEST SUM(0) WHERE ? REACHES ? OVER friends EDGE (person1, person2)`,
		933, 8333)
	if err == nil || !strings.Contains(err.Error(), "positive") {
		t.Fatalf("expected strictly-positive weight error for constant, got %v", err)
	}
}

func TestGraphIndexMatchesAdHoc(t *testing.T) {
	db := appendixDB(t)
	adhoc, err := db.QueryScalar(
		`SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (person1, person2)`, 933, 4139)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.BuildGraphIndex("friends", "person1", "person2"); err != nil {
		t.Fatal(err)
	}
	indexed, err := db.QueryScalar(
		`SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (person1, person2)`, 933, 4139)
	if err != nil {
		t.Fatal(err)
	}
	if adhoc != indexed {
		t.Fatalf("indexed result %v != ad hoc %v", indexed, adhoc)
	}
	// Writes invalidate: a new shortcut edge must be visible.
	db.MustExec(`INSERT INTO friends VALUES (933, 4139, '2024-01-01', 1.0)`)
	after, err := db.QueryScalar(
		`SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (person1, person2)`, 933, 4139)
	if err != nil {
		t.Fatal(err)
	}
	if after != int64(1) {
		t.Fatalf("after shortcut insert distance = %v, want 1 (stale index?)", after)
	}
}

func TestWeightedFloatDijkstra(t *testing.T) {
	db := appendixDB(t)
	got, err := db.QueryScalar(
		`SELECT CHEAPEST SUM(f: weight)
		 WHERE ? REACHES ? OVER friends f EDGE (person1, person2)`,
		933, 4139)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3.5 { // 0.5 + 2.0 + 1.0
		t.Fatalf("weighted cost = %v, want 3.5", got)
	}
}

func TestReachesAsJoinPredicate(t *testing.T) {
	db := appendixDB(t)
	// Graph join: all connected pairs (the paper's VP1 x VP2 form).
	res, err := db.Query(`
		SELECT p1.id, p2.id
		FROM persons p1, persons p2
		WHERE p1.id REACHES p2.id OVER friends EDGE (person1, person2)
		  AND p1.id <> p2.id
		ORDER BY p1.id, p2.id`)
	if err != nil {
		t.Fatal(err)
	}
	// 4 mutually connected persons -> 12 ordered pairs.
	if res.Len() != 12 {
		t.Fatalf("connected pairs = %d, want 12\n%s", res.Len(), res)
	}
}

func TestMultipleReachesPredicates(t *testing.T) {
	db := appendixDB(t)
	res, err := db.Query(`
		SELECT CHEAPEST SUM(a: 1) AS hops1, CHEAPEST SUM(b: 1) AS hops2
		WHERE ? REACHES ? OVER friends a EDGE (person1, person2)
		  AND ? REACHES ? OVER friends b EDGE (person2, person1)`,
		933, 8333, 8333, 933)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][0] != int64(2) || res.Rows[0][1] != int64(2) {
		t.Fatalf("got %v", res.Rows)
	}
}

func TestSelfPairIsReachableWithCostZero(t *testing.T) {
	db := appendixDB(t)
	got, err := db.QueryScalar(
		`SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (person1, person2)`,
		933, 933)
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(0) {
		t.Fatalf("self distance = %v, want 0", got)
	}
}

func TestNonVertexKeysFailPredicate(t *testing.T) {
	db := appendixDB(t)
	// 123456 is not a vertex (appears in neither person1 nor person2).
	res, err := db.Query(
		`SELECT CHEAPEST SUM(1) WHERE ? REACHES ? OVER friends EDGE (person1, person2)`,
		123456, 933)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Fatalf("non-vertex source must fail the predicate, got\n%s", res)
	}
}

func TestTypeMismatchIsSemanticError(t *testing.T) {
	db := appendixDB(t)
	_, err := db.Query(
		`SELECT CHEAPEST SUM(1)
		 FROM persons
		 WHERE firstName REACHES id OVER friends EDGE (person1, person2)`)
	if err == nil || !strings.Contains(err.Error(), "type") {
		t.Fatalf("expected a type mismatch error, got %v", err)
	}
}
