package graphsql

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestQueryRowsBatches walks a result in small batches and checks the
// concatenation equals the buffered Query result.
func TestQueryRowsBatches(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t (x BIGINT, s VARCHAR)`)
	for i := 0; i < 10; i++ {
		db.MustExec(`INSERT INTO t VALUES (?, ?)`, i, "v")
	}
	want, err := db.Query(`SELECT x, s FROM t ORDER BY x`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryRowsCtx(context.Background(), `SELECT x, s FROM t ORDER BY x`)
	if err != nil {
		t.Fatal(err)
	}
	// Under the pull executor the total is unknown (-1) until the
	// cursor is exhausted; the materializing executor (GSQL_EXEC
	// override) knows it up front.
	if n := rows.Len(); (n != -1 && n != 10) || !reflect.DeepEqual(rows.Columns, want.Columns) {
		t.Fatalf("cursor shape: %d rows, columns %v", n, rows.Columns)
	}
	var got [][]any
	sizes := []int{}
	for {
		b, err := rows.NextBatch(3)
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		sizes = append(sizes, len(b))
		got = append(got, b...)
	}
	if !reflect.DeepEqual(sizes, []int{3, 3, 3, 1}) {
		t.Fatalf("batch sizes %v", sizes)
	}
	if rows.Len() != 10 {
		t.Fatalf("exhausted cursor Len = %d, want 10", rows.Len())
	}
	if !reflect.DeepEqual(got, want.Rows) {
		t.Fatalf("cursor rows differ:\n%v\nvs\n%v", got, want.Rows)
	}
}

// TestQueryRowsSnapshotIsolation: a cursor taken before writes must
// keep serving the rows it saw — INSERT appends beyond the snapshot,
// DELETE swaps columns underneath it — while new queries see the new
// data.
func TestQueryRowsSnapshotIsolation(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t (x BIGINT)`)
	db.MustExec(`INSERT INTO t VALUES (1), (2), (3)`)
	rows, err := db.QueryRowsCtx(context.Background(), `SELECT x FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate after the cursor exists but before it is drained.
	db.MustExec(`INSERT INTO t VALUES (4)`)
	db.MustExec(`DELETE FROM t WHERE x = 2`)
	var got []int64
	for {
		b, err := rows.NextBatch(2)
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		for _, r := range b {
			got = append(got, r[0].(int64))
		}
	}
	if !reflect.DeepEqual(got, []int64{1, 2, 3}) {
		t.Fatalf("snapshot leaked writes: %v", got)
	}
	// A fresh query sees the post-write state.
	res, err := db.Query(`SELECT x FROM t ORDER BY x`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][0].(int64) != 1 || res.Rows[1][0].(int64) != 3 || res.Rows[2][0].(int64) != 4 {
		t.Fatalf("post-write state wrong: %v", res.Rows)
	}
}

// TestQueryRowsCancelBetweenBatches: the cursor honors its context.
func TestQueryRowsCancelBetweenBatches(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t (x BIGINT)`)
	db.MustExec(`INSERT INTO t VALUES (1), (2), (3), (4)`)
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryRowsCtx(ctx, `SELECT x FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rows.NextBatch(2); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := rows.NextBatch(2); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}

// TestQueryRowsNonSelect: DDL through the cursor API yields an empty
// result, not an error.
func TestQueryRowsNonSelect(t *testing.T) {
	db := Open()
	rows, err := db.QueryRowsCtx(context.Background(), `CREATE TABLE t (x BIGINT)`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 0 {
		t.Fatalf("DDL cursor has %d rows", rows.Len())
	}
	if b, err := rows.NextBatch(10); err != nil || b != nil {
		t.Fatalf("DDL cursor batch: %v, %v", b, err)
	}
}

// TestSessionQueryRowsAndPrepare covers the session-side cursor and
// explicit Prepare metadata.
func TestSessionQueryRowsAndPrepare(t *testing.T) {
	db := Open()
	db.MustExec(`CREATE TABLE t (x BIGINT)`)
	db.MustExec(`INSERT INTO t VALUES (1), (2), (3)`)
	s := db.Session()
	info, err := s.Prepare(`SELECT x FROM t WHERE x >= ? ORDER BY x`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if info.NumParams != 1 || !info.IsSelect {
		t.Fatalf("unexpected StmtInfo: %+v", info)
	}
	if _, err := s.Prepare(`SELEKT`); err == nil {
		t.Fatal("bad statement prepared")
	}
	rows, err := s.QueryRows(context.Background(), QueryOptions{}, `SELECT x FROM t WHERE x >= ? ORDER BY x`, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rows.NextBatch(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 2 || b[0][0].(int64) != 2 || b[1][0].(int64) != 3 {
		t.Fatalf("session cursor rows: %v", b)
	}
	// DataVersion moves with writes and not with reads.
	v := db.DataVersion()
	if _, err := db.Query(`SELECT COUNT(*) FROM t`); err != nil {
		t.Fatal(err)
	}
	if db.DataVersion() != v {
		t.Fatal("SELECT moved DataVersion")
	}
	db.MustExec(`INSERT INTO t VALUES (9)`)
	if db.DataVersion() == v {
		t.Fatal("INSERT did not move DataVersion")
	}
}
