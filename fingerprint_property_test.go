package graphsql

import (
	"context"
	"fmt"
	"testing"

	"graphsql/internal/sql/fingerprint"
	"graphsql/internal/testutil"
)

// The fingerprint property: for every statement, executing through the
// session path (which normalizes literals to parameters and rides the
// plan cache) must render byte-identically to executing the raw text
// through the DB path (which never normalizes) — at every parallelism
// setting the differential harness uses. Column naming is part of the
// rendered output, so any normalization that leaked into a SELECT list
// (where unaliased columns are named by their expression text) would
// fail here, not just wrong values.

func TestFingerprintDifferentialCorpus(t *testing.T) {
	forceParallelOperators(t)
	ctx := context.Background()
	for _, p := range differentialSettings() {
		db := openCorpusDB(t, p)
		sess := db.Session()
		for qi, q := range testutil.Queries() {
			ref, err := db.Query(q)
			if err != nil {
				t.Fatalf("parallelism %d q%02d raw: %v\nquery: %s", p, qi, err, q)
			}
			got, err := sess.Query(ctx, q)
			if err != nil {
				t.Fatalf("parallelism %d q%02d normalized: %v\nquery: %s", p, qi, err, q)
			}
			if got.String() != ref.String() {
				t.Errorf("parallelism %d q%02d: normalized path renders differently\nquery: %s\n--- raw\n%s--- normalized\n%s",
					p, qi, q, ref.String(), got.String())
			}
		}
	}
}

// TestFingerprintLiteralVariantsShareAPlan is the point of the whole
// feature: replaying one statement shape with different literals must
// hit the session plan cache, and every variant must still compute its
// own literal's answer.
func TestFingerprintLiteralVariantsShareAPlan(t *testing.T) {
	ctx := context.Background()
	db := openCorpusDB(t, 1)
	sess := db.Session()

	shape := "SELECT COUNT(*) FROM knows WHERE src >= %d AND dst >= %d"
	// Distinct literal pairs: same fingerprint, different answers.
	pairs := [][2]int{{0, 0}, {10, 5}, {100, 50}, {250, 125}}
	for i, pr := range pairs {
		q := fmt.Sprintf(shape, pr[0], pr[1])
		n := fingerprint.Normalize(q)
		if !n.Changed() || len(n.Literals) != 2 {
			t.Fatalf("expected 2 extracted literals for %q, got %+v", q, n)
		}
		ref, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != ref.String() {
			t.Fatalf("variant %d: %q rendered differently:\nraw %s\nnormalized %s", i, q, ref.String(), got.String())
		}
	}
	hits, misses := db.PlanCacheStats()
	// First variant misses; the other three literal variants must hit.
	if hits < uint64(len(pairs)-1) {
		t.Fatalf("plan cache hits = %d, want >= %d (misses %d): literal variants did not share a plan", hits, len(pairs)-1, misses)
	}
	if misses == 0 {
		t.Fatalf("plan cache misses = 0: counter wiring broken")
	}

	// Mixed caller parameters and literals interleave in statement
	// order; exercise both orders.
	r1, err := sess.Query(ctx, "SELECT COUNT(*) FROM knows WHERE src >= ? AND dst >= 7", 20)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.Query("SELECT COUNT(*) FROM knows WHERE src >= 20 AND dst >= 7")
	if err != nil {
		t.Fatal(err)
	}
	if r1.String() != r2.String() {
		t.Fatalf("mixed params/literals: %s vs %s", r1.String(), r2.String())
	}
	r3, err := sess.Query(ctx, "SELECT COUNT(*) FROM knows WHERE src >= 3 AND dst >= ?", 9)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := db.Query("SELECT COUNT(*) FROM knows WHERE src >= 3 AND dst >= 9")
	if err != nil {
		t.Fatal(err)
	}
	if r3.String() != r4.String() {
		t.Fatalf("mixed params/literals (literal first): %s vs %s", r3.String(), r4.String())
	}

	// Argument-count errors must read exactly as without normalization:
	// the statement as written has one placeholder.
	_, err = sess.Query(ctx, "SELECT COUNT(*) FROM knows WHERE src >= ? AND dst >= 7")
	if err == nil {
		t.Fatal("expected an argument-count error")
	}
	_, rawErr := db.Query("SELECT COUNT(*) FROM knows WHERE src >= ? AND dst >= 7")
	if rawErr == nil || err.Error() != rawErr.Error() {
		t.Fatalf("normalized error %q differs from raw error %q", err, rawErr)
	}
}

// TestFingerprintPrepareReportsRawParamCount pins the wire contract:
// Prepare reports the placeholders the client wrote, not the larger
// count fingerprinting compiles into the cached plan.
func TestFingerprintPrepareReportsRawParamCount(t *testing.T) {
	db := openCorpusDB(t, 1)
	sess := db.Session()
	info, err := sess.Prepare("SELECT COUNT(*) FROM knows WHERE src >= ? AND dst >= 7", 5)
	if err != nil {
		t.Fatal(err)
	}
	if info.NumParams != 1 {
		t.Fatalf("NumParams = %d, want 1 (the ? the client wrote)", info.NumParams)
	}
	if !info.IsSelect {
		t.Fatal("IsSelect = false")
	}
}
